//! Index persistence: serializing a bulk-loaded [`RTree`] into a page
//! store and loading it back.
//!
//! ## Index-deferred layout
//!
//! The snapshot is written the way an external bulk loader would want to:
//!
//! 1. the **leaf-entry arena** (point ids in leaf order) goes first,
//!    written sequentially from page 1 — the big, cheap, append-only part,
//! 2. the **directory** (the serialized node arena) is back-filled after
//!    the entries,
//! 3. the **superblock** (page 0) is written **last** and then
//!    [`PageStore::sync`]ed — it is the commit point: a reopen that finds
//!    no valid superblock finds no index.
//!
//! ## Superblock (page 0, little-endian u64 words)
//!
//! | word | field |
//! |-----:|-------|
//! | 0    | `SNAP_MAGIC` |
//! | 1    | format version (1) |
//! | 2    | dimensionality |
//! | 3    | root level |
//! | 4    | leaf level |
//! | 5    | number of nodes |
//! | 6    | number of entries |
//! | 7    | entry pages |
//! | 8    | node pages |
//! | 9    | entry bytes |
//! | 10   | node bytes |
//!
//! ## Node record
//!
//! `level: u32 | lo: dim × f32 | hi: dim × f32 | tag: u8 |` then for a
//! leaf `start: u32, end: u32` (entry-arena range) or for an inner node
//! `count: u32, children: count × u32` (arena indices).
//!
//! Loading requires a byte-carrying backend (the file store); on the
//! simulated backend reads return no bytes and the superblock check
//! fails, by design.

use crate::pagefile::PAYLOAD_BYTES;
use hdidx_core::{Error, HyperRect, Result};
use hdidx_diskio::{FileHandle, PageStore};
use hdidx_vamsplit::tree::{Node, NodeKind, RTree};

const SNAP_MAGIC: u64 = 0x4844_4958_534E_4150; // "HDIXSNAP"
const VERSION: u64 = 1;
const SUPERBLOCK_WORDS: usize = 11;

fn pages_for(bytes: usize) -> u64 {
    (bytes.div_ceil(PAYLOAD_BYTES) as u64).max(1)
}

/// Pads `bytes` with zeros to exactly `pages * PAYLOAD_BYTES`.
fn padded(mut bytes: Vec<u8>, pages: u64) -> Vec<u8> {
    bytes.resize(pages as usize * PAYLOAD_BYTES, 0);
    bytes
}

fn encode_nodes(tree: &RTree) -> Vec<u8> {
    let mut out = Vec::new();
    for node in tree.nodes() {
        out.extend_from_slice(&node.level.to_le_bytes());
        for &v in node.rect.lo() {
            out.extend_from_slice(&v.to_le_bytes());
        }
        for &v in node.rect.hi() {
            out.extend_from_slice(&v.to_le_bytes());
        }
        match &node.kind {
            NodeKind::Leaf { entries } => {
                out.push(0);
                out.extend_from_slice(&entries.start.to_le_bytes());
                out.extend_from_slice(&entries.end.to_le_bytes());
            }
            NodeKind::Inner { children } => {
                out.push(1);
                out.extend_from_slice(&(children.len() as u32).to_le_bytes());
                for &c in children {
                    out.extend_from_slice(&c.to_le_bytes());
                }
            }
        }
    }
    out
}

/// Sequential byte reader over the deserialized snapshot regions.
struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let s = self
            .bytes
            .get(self.at..self.at + n)
            .ok_or_else(|| Error::StoreFailure {
                op: "snapshot decode",
                detail: format!("truncated at byte {} of {}", self.at, self.bytes.len()),
            })?;
        self.at += n;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn f32(&mut self) -> Result<f32> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }
}

fn decode_nodes(bytes: &[u8], dim: usize, num_nodes: usize) -> Result<Vec<Node>> {
    let mut cur = Cursor { bytes, at: 0 };
    let mut nodes = Vec::with_capacity(num_nodes);
    for _ in 0..num_nodes {
        let level = cur.u32()?;
        let mut lo = Vec::with_capacity(dim);
        let mut hi = Vec::with_capacity(dim);
        for _ in 0..dim {
            lo.push(cur.f32()?);
        }
        for _ in 0..dim {
            hi.push(cur.f32()?);
        }
        let rect = HyperRect::new(lo, hi)?;
        let kind = match cur.u8()? {
            0 => NodeKind::Leaf {
                entries: cur.u32()?..cur.u32()?,
            },
            1 => {
                let count = cur.u32()? as usize;
                let mut children = Vec::with_capacity(count);
                for _ in 0..count {
                    children.push(cur.u32()?);
                }
                NodeKind::Inner { children }
            }
            tag => {
                return Err(Error::StoreFailure {
                    op: "snapshot decode",
                    detail: format!("unknown node tag {tag}"),
                })
            }
        };
        nodes.push(Node { level, rect, kind });
    }
    Ok(nodes)
}

/// Writes `tree` into an **empty** `store` using the index-deferred
/// layout (entries first, directory back-filled, superblock last) and
/// syncs it. Returns the handle of the snapshot region (always pages
/// `0..total`).
///
/// # Errors
///
/// Rejects a non-empty store (the snapshot owns page 0); propagates
/// backend errors.
pub fn persist_index(store: &mut dyn PageStore, tree: &RTree) -> Result<FileHandle> {
    if store.pages() != 0 {
        return Err(Error::invalid(
            "store",
            format!(
                "persist_index needs an empty store; {} pages already allocated",
                store.pages()
            ),
        ));
    }
    let entry_bytes: Vec<u8> = tree
        .entries()
        .iter()
        .flat_map(|e| e.to_le_bytes())
        .collect();
    let node_bytes = encode_nodes(tree);
    let entry_pages = pages_for(entry_bytes.len());
    let node_pages = pages_for(node_bytes.len());
    let total = 1 + entry_pages + node_pages;
    let f = store.alloc(total)?;

    let mut sb = Vec::with_capacity(SUPERBLOCK_WORDS * 8);
    for w in [
        SNAP_MAGIC,
        VERSION,
        tree.dim() as u64,
        tree.root_level() as u64,
        tree.leaf_level() as u64,
        tree.nodes().len() as u64,
        tree.num_entries() as u64,
        entry_pages,
        node_pages,
        entry_bytes.len() as u64,
        node_bytes.len() as u64,
    ] {
        sb.extend_from_slice(&w.to_le_bytes());
    }

    // Entries first, sequential from page 1; directory back-filled;
    // superblock last as the commit point.
    store.write_pages(&f, 1, entry_pages, &padded(entry_bytes, entry_pages))?;
    store.write_pages(
        &f,
        1 + entry_pages,
        node_pages,
        &padded(node_bytes, node_pages),
    )?;
    store.write_pages(&f, 0, 1, &padded(sb, 1))?;
    store.sync()?;
    Ok(f)
}

/// Loads the index persisted by [`persist_index`] from `store`, checking
/// the structural invariants. Returns the tree and the snapshot region's
/// handle.
///
/// # Errors
///
/// A missing or malformed superblock, decode failures, or a tree that
/// fails [`RTree::check_invariants`].
pub fn load_index(store: &mut dyn PageStore) -> Result<(RTree, FileHandle)> {
    let sb_handle = FileHandle::from_raw(0, 1);
    let mut sb = vec![0u8; PAYLOAD_BYTES];
    store.read_pages(&sb_handle, 0, 1, &mut sb)?;
    let word = |i: usize| u64::from_le_bytes(sb[i * 8..i * 8 + 8].try_into().unwrap());
    if word(0) != SNAP_MAGIC {
        return Err(Error::StoreFailure {
            op: "snapshot superblock",
            detail: format!("bad magic {:#018x} (no index persisted?)", word(0)),
        });
    }
    if word(1) != VERSION {
        return Err(Error::StoreFailure {
            op: "snapshot superblock",
            detail: format!("unsupported version {}", word(1)),
        });
    }
    let dim = word(2) as usize;
    let root_level = word(3) as usize;
    let leaf_level = word(4) as usize;
    let num_nodes = word(5) as usize;
    let num_entries = word(6) as usize;
    let entry_pages = word(7);
    let node_pages = word(8);
    let entry_len = word(9) as usize;
    let node_len = word(10) as usize;
    if entry_len != num_entries * 4 || entry_len > entry_pages as usize * PAYLOAD_BYTES {
        return Err(Error::StoreFailure {
            op: "snapshot superblock",
            detail: format!("entry arena: {num_entries} entries in {entry_len} bytes"),
        });
    }
    if node_len > node_pages as usize * PAYLOAD_BYTES {
        return Err(Error::StoreFailure {
            op: "snapshot superblock",
            detail: format!("node arena: {node_len} bytes in {node_pages} pages"),
        });
    }
    let total = 1 + entry_pages + node_pages;
    let f = FileHandle::from_raw(0, total);

    let mut buf = vec![0u8; entry_pages as usize * PAYLOAD_BYTES];
    store.read_pages(&f, 1, entry_pages, &mut buf)?;
    let entries: Vec<u32> = buf[..entry_len]
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
        .collect();

    let mut buf = vec![0u8; node_pages as usize * PAYLOAD_BYTES];
    store.read_pages(&f, 1 + entry_pages, node_pages, &mut buf)?;
    let nodes = decode_nodes(&buf[..node_len], dim, num_nodes)?;

    let tree = RTree::from_arenas(dim, root_level, leaf_level, nodes, entries)?;
    tree.check_invariants()?;
    Ok((tree, f))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Durability, FileStore};
    use hdidx_diskio::DiskOptions;

    fn sample_tree() -> RTree {
        let leaf = |lo: f32, hi: f32, range: std::ops::Range<u32>| Node {
            level: 1,
            rect: HyperRect::new(vec![lo, lo], vec![hi, hi]).unwrap(),
            kind: NodeKind::Leaf { entries: range },
        };
        let root = Node {
            level: 2,
            rect: HyperRect::new(vec![0.0, 0.0], vec![4.0, 4.0]).unwrap(),
            kind: NodeKind::Inner {
                children: vec![1, 2, 3],
            },
        };
        let nodes = vec![
            root,
            leaf(0.0, 1.0, 0..3),
            leaf(1.5, 2.5, 3..5),
            leaf(3.0, 4.0, 5..9),
        ];
        RTree::from_arenas(2, 2, 1, nodes, (0..9).rev().collect()).unwrap()
    }

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("hdidx_snap_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn persisted_tree_loads_back_structurally_identical() {
        let dir = tmpdir("roundtrip");
        let tree = sample_tree();
        let mut st = FileStore::open(&dir, Durability::PerBatch, &DiskOptions::new()).unwrap();
        let f = persist_index(&mut st, &tree).unwrap();
        drop(st); // crash-style close; persist_index synced

        let mut st = FileStore::open(&dir, Durability::PerBatch, &DiskOptions::new()).unwrap();
        let (loaded, f2) = load_index(&mut st).unwrap();
        assert_eq!(loaded, tree, "arenas must round-trip bitwise");
        assert_eq!(f2.pages(), f.pages());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn persist_requires_an_empty_store() {
        let dir = tmpdir("nonempty");
        let mut st = FileStore::open(&dir, Durability::PerBatch, &DiskOptions::new()).unwrap();
        st.alloc(1).unwrap();
        assert!(persist_index(&mut st, &sample_tree()).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn loading_an_empty_store_reports_a_missing_superblock() {
        let dir = tmpdir("empty");
        let mut st = FileStore::open(&dir, Durability::PerBatch, &DiskOptions::new()).unwrap();
        let err = load_index(&mut st).unwrap_err();
        assert!(
            matches!(
                err,
                Error::StoreFailure {
                    op: "snapshot superblock",
                    ..
                }
            ),
            "{err}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn entries_precede_the_directory_on_disk() {
        // The index-deferred layout: sequential entry pages from page 1,
        // directory after, superblock at page 0 written last.
        let dir = tmpdir("layout");
        let tree = sample_tree();
        let mut st = FileStore::open(&dir, Durability::PerBatch, &DiskOptions::new()).unwrap();
        let f = persist_index(&mut st, &tree).unwrap();
        assert_eq!(f.start_page(), 0);
        assert_eq!(f.pages(), 3, "superblock + 1 entry page + 1 node page");
        let mut page = vec![0u8; PAYLOAD_BYTES];
        st.read_pages(&f, 1, 1, &mut page).unwrap();
        assert_eq!(
            u32::from_le_bytes(page[0..4].try_into().unwrap()),
            8,
            "entry arena (reversed ids) starts at page 1"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
