//! [`FileStore`]: the file-backed [`PageStore`] backend.
//!
//! ## Architecture
//!
//! A `FileStore` is three cooperating pieces under one directory:
//!
//! * an embedded **model [`Disk`]** (configured from the same
//!   [`DiskOptions`] the simulated backend takes) that owns the page
//!   address space and is charged *first* on every access — so seeks,
//!   transfers, retries and fault traces are identical to the simulated
//!   backend's by construction,
//! * the **page file** (`pages.db`) holding checkpointed page images with
//!   checksummed headers,
//! * the **write-ahead log** (`wal.log`) holding every page written since
//!   the last checkpoint.
//!
//! ## Write path (redo-only, no-steal)
//!
//! One [`PageStore::write_pages`] call forms one WAL batch: a frame per
//! page plus a commit record, fsynced according to the [`Durability`]
//! mode. Dirty payloads stay in an in-memory table until
//! [`PageStore::sync`] checkpoints them: flush to the page file, fsync
//! it, then truncate the WAL. The page file therefore only ever holds
//! checkpointed state, and a crash at any moment loses exactly the WAL
//! batches that were not yet durable — never a checkpointed page.
//!
//! ## Reopen
//!
//! [`FileStore::open`] recovers: it replays every complete WAL batch
//! (truncating the torn tail), verifies the page-file checksums —
//! skipping pages the replay is about to rewrite, since a crash during a
//! checkpoint can tear exactly those — applies the replayed frames, and
//! checkpoints. Dropping a `FileStore` deliberately does **nothing**
//! (no flush, no fsync): a drop *is* the crash model the recovery tests
//! rely on.

use crate::inject::{OsFs, Vfs};
use crate::pagefile::{PageFile, PAYLOAD_BYTES};
use crate::wal::Wal;
use crate::Durability;
use hdidx_core::{Error, Result};
use hdidx_diskio::{Disk, DiskOptions, FileHandle, IoStats, PageStore};
use hdidx_faults::FaultEvent;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// File-backed page store with WAL durability. See the module docs.
#[derive(Debug)]
pub struct FileStore {
    model: Disk,
    pagefile: PageFile,
    wal: Wal,
    /// Dirty payloads (absolute page → payload) since the last checkpoint.
    dirty: BTreeMap<u64, Vec<u8>>,
    durability: Durability,
    dir: PathBuf,
    /// Commits since the WAL was last fsynced (drives [`Durability::EveryN`]).
    unsynced_commits: u32,
}

impl FileStore {
    /// Opens (creating if missing) the store under `dir`, running
    /// recovery: complete WAL batches are replayed over the page file,
    /// the torn tail is truncated, page checksums are verified
    /// (torn-write detection), and the result is checkpointed. The
    /// embedded model disk is configured from `opts` and pre-allocated
    /// over the recovered pages so fresh allocations extend past them.
    ///
    /// # Errors
    ///
    /// OS errors, or corruption that recovery cannot repair (a bad
    /// checksum on a page no surviving WAL batch covers).
    pub fn open(dir: &Path, durability: Durability, opts: &DiskOptions) -> Result<FileStore> {
        FileStore::open_in(Arc::new(OsFs), dir, durability, opts)
    }

    /// [`FileStore::open`] against a caller-supplied filesystem (e.g.
    /// the crash-injected [`InjectedFs`](crate::InjectedFs)).
    ///
    /// # Errors
    ///
    /// As [`FileStore::open`].
    pub fn open_in(
        fs: Arc<dyn Vfs>,
        dir: &Path,
        durability: Durability,
        opts: &DiskOptions,
    ) -> Result<FileStore> {
        fs.create_dir_all(dir)
            .map_err(|e| crate::io_err("store mkdir", e))?;
        let mut wal = Wal::open_in(&*fs, &dir.join("wal.log"))?;
        let batches = wal.recover()?;
        let covered: std::collections::BTreeSet<u64> = batches
            .iter()
            .flat_map(|b| b.frames.iter().map(|f| f.page_no))
            .collect();
        let mut pagefile = PageFile::open_deferred_in(&*fs, &dir.join("pages.db"))?;
        pagefile.verify_skipping(|p| covered.contains(&p))?;
        for batch in &batches {
            for frame in &batch.frames {
                pagefile.write_page(frame.page_no, &frame.payload)?;
            }
        }
        pagefile.sync()?;
        wal.truncate()?;
        // The files' *directory entries* must be durable before any WAL
        // fsync can promise anything: a fully fsynced wal.log still
        // vanishes in a power cut if the directory was never synced.
        fs.sync_dir(dir)
            .map_err(|e| crate::io_err("store dir fsync", e))?;

        let mut model = Disk::with_options(opts);
        if pagefile.pages() > 0 {
            // Claim the recovered address space; charges nothing.
            model.alloc(pagefile.pages())?;
        }
        Ok(FileStore {
            model,
            pagefile,
            wal,
            dirty: BTreeMap::new(),
            durability,
            dir: dir.to_path_buf(),
            unsynced_commits: 0,
        })
    }

    /// The store's durability mode.
    #[must_use]
    pub fn durability(&self) -> Durability {
        self.durability
    }

    /// The store's directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Current WAL length in bytes (un-checkpointed redo volume).
    #[must_use]
    pub fn wal_len(&self) -> u64 {
        self.wal.len()
    }

    /// Validates a byte buffer against the empty-or-exact convention and
    /// returns whether it carries bytes.
    fn carries_bytes(n_pages: u64, len: usize) -> Result<bool> {
        if len == 0 {
            return Ok(false);
        }
        let want = n_pages as usize * PAYLOAD_BYTES;
        if len != want {
            return Err(Error::invalid(
                "buf",
                format!("buffer is {len} bytes; expected 0 or {want} ({n_pages} pages)"),
            ));
        }
        Ok(true)
    }
}

impl PageStore for FileStore {
    fn backend(&self) -> &'static str {
        "file"
    }

    fn alloc(&mut self, pages: u64) -> Result<FileHandle> {
        // The model owns the address space; real bytes materialize lazily
        // on first write.
        self.model.alloc(pages)
    }

    fn read_pages(
        &mut self,
        file: &FileHandle,
        first_page: u64,
        n_pages: u64,
        buf: &mut [u8],
    ) -> Result<()> {
        let carries = Self::carries_bytes(n_pages, buf.len())?;
        // Model first: range validation, head charging, fault retries.
        self.model.read_pages(file, first_page, n_pages, &mut [])?;
        if !carries {
            return Ok(());
        }
        let base = file.start_page() + first_page;
        for i in 0..n_pages {
            let page = base + i;
            let out = &mut buf[i as usize * PAYLOAD_BYTES..(i as usize + 1) * PAYLOAD_BYTES];
            if let Some(payload) = self.dirty.get(&page) {
                out.fill(0);
                out[..payload.len()].copy_from_slice(payload);
            } else {
                self.pagefile.read_page(page, out)?;
            }
        }
        Ok(())
    }

    fn write_pages(
        &mut self,
        file: &FileHandle,
        first_page: u64,
        n_pages: u64,
        data: &[u8],
    ) -> Result<()> {
        let carries = Self::carries_bytes(n_pages, data.len())?;
        self.model.write_pages(file, first_page, n_pages, &[])?;
        if !carries {
            return Ok(());
        }
        // One write_pages call = one WAL batch.
        let base = file.start_page() + first_page;
        for i in 0..n_pages {
            let payload = &data[i as usize * PAYLOAD_BYTES..(i as usize + 1) * PAYLOAD_BYTES];
            self.wal.append_frame(base + i, payload)?;
        }
        self.wal.commit()?;
        match self.durability {
            Durability::PerBatch => self.wal.sync()?,
            Durability::EveryN(n) => {
                self.unsynced_commits += 1;
                if self.unsynced_commits >= n {
                    self.wal.sync()?;
                    self.unsynced_commits = 0;
                }
            }
            Durability::None => {}
        }
        for i in 0..n_pages {
            let payload = &data[i as usize * PAYLOAD_BYTES..(i as usize + 1) * PAYLOAD_BYTES];
            self.dirty.insert(base + i, payload.to_vec());
        }
        Ok(())
    }

    fn sync(&mut self) -> Result<()> {
        // Checkpoint: dirty pages → page file, fsync it, drop the WAL.
        for (&page, payload) in &self.dirty {
            self.pagefile.write_page(page, payload)?;
        }
        self.pagefile.sync()?;
        self.wal.truncate()?;
        self.dirty.clear();
        self.unsynced_commits = 0;
        Ok(())
    }

    fn pages(&self) -> u64 {
        self.model.allocated_pages()
    }

    fn stats(&self) -> IoStats {
        self.model.stats()
    }

    fn reset_stats(&mut self) {
        self.model.reset_stats();
    }

    fn charge(&mut self, io: IoStats) {
        self.model.charge(io);
    }

    fn fault_trace(&self) -> &[FaultEvent] {
        self.model.fault_trace()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("hdidx_filestore_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn payload(tag: u8, pages: u64) -> Vec<u8> {
        (0..pages as usize * PAYLOAD_BYTES)
            .map(|i| tag.wrapping_add((i % 13) as u8))
            .collect()
    }

    #[test]
    fn bytes_round_trip_through_checkpoint_and_reopen() {
        let dir = tmpdir("roundtrip");
        let mut st = FileStore::open(&dir, Durability::PerBatch, &DiskOptions::new()).unwrap();
        let f = st.alloc(8).unwrap();
        let data = payload(1, 3);
        st.write_pages(&f, 2, 3, &data).unwrap();
        // Visible before the checkpoint (served from the dirty table).
        let mut back = vec![0u8; 3 * PAYLOAD_BYTES];
        st.read_pages(&f, 2, 3, &mut back).unwrap();
        assert_eq!(back, data);
        PageStore::sync(&mut st).unwrap();
        drop(st);

        let mut st = FileStore::open(&dir, Durability::PerBatch, &DiskOptions::new()).unwrap();
        assert_eq!(st.backend(), "file");
        // The model was pre-allocated over the recovered pages; re-mint
        // the handle over the same range.
        let f = FileHandle::from_raw(f.start_page(), f.pages());
        let mut back = vec![0u8; 3 * PAYLOAD_BYTES];
        st.read_pages(&f, 2, 3, &mut back).unwrap();
        assert_eq!(back, data);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn crash_before_checkpoint_recovers_from_the_wal() {
        let dir = tmpdir("crash");
        let mut st = FileStore::open(&dir, Durability::PerBatch, &DiskOptions::new()).unwrap();
        let f = st.alloc(4).unwrap();
        let data = payload(7, 2);
        st.write_pages(&f, 0, 2, &data).unwrap();
        assert!(st.wal_len() > 0);
        drop(st); // crash: no checkpoint

        let mut st = FileStore::open(&dir, Durability::PerBatch, &DiskOptions::new()).unwrap();
        assert_eq!(st.wal_len(), 0, "recovery checkpoints");
        let f = FileHandle::from_raw(f.start_page(), f.pages());
        let mut back = vec![0u8; 2 * PAYLOAD_BYTES];
        st.read_pages(&f, 0, 2, &mut back).unwrap();
        assert_eq!(back, data, "per-batch durability survives the crash");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn durability_none_loses_unsynced_batches_on_simulated_power_cut() {
        let dir = tmpdir("powercut");
        let mut st = FileStore::open(&dir, Durability::None, &DiskOptions::new()).unwrap();
        let f = st.alloc(4).unwrap();
        st.write_pages(&f, 0, 1, &payload(3, 1)).unwrap();
        drop(st);
        // Model the power cut: the un-fsynced WAL bytes never hit disk.
        std::fs::OpenOptions::new()
            .write(true)
            .open(dir.join("wal.log"))
            .unwrap()
            .set_len(0)
            .unwrap();

        let mut st = FileStore::open(&dir, Durability::None, &DiskOptions::new()).unwrap();
        let f = FileHandle::from_raw(f.start_page(), f.pages());
        let mut back = vec![0u8; PAYLOAD_BYTES];
        st.read_pages(&f, 0, 1, &mut back).unwrap();
        assert!(back.iter().all(|&b| b == 0), "unsynced batch is gone");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn charging_matches_the_simulated_backend_bitwise() {
        let dir = tmpdir("charge");
        let drive = |store: &mut dyn PageStore| {
            let f = store.alloc(64).unwrap();
            store.read_pages(&f, 0, 8, &mut []).unwrap();
            store.write_pages(&f, 32, 4, &[]).unwrap();
            store.read_records(&f, 90, 30, 10).unwrap();
            store.stats()
        };
        let mut sim = Disk::new();
        let mut file = FileStore::open(&dir, Durability::PerBatch, &DiskOptions::new()).unwrap();
        assert_eq!(drive(&mut sim), drive(&mut file));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mis_sized_buffers_are_rejected() {
        let dir = tmpdir("badbuf");
        let mut st = FileStore::open(&dir, Durability::PerBatch, &DiskOptions::new()).unwrap();
        let f = st.alloc(4).unwrap();
        let before = st.stats();
        assert!(st.write_pages(&f, 0, 2, &[0u8; 7]).is_err());
        let mut buf = [0u8; 7];
        assert!(st.read_pages(&f, 0, 2, &mut buf).is_err());
        assert_eq!(st.stats(), before, "rejected calls charge nothing");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
