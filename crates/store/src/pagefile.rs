//! The checksummed page file: fixed 8 KiB pages, 32-byte headers,
//! torn-write detection on reopen.
//!
//! ## Page layout (8192 bytes)
//!
//! | offset | bytes | field |
//! |-------:|------:|-------|
//! | 0      | 8     | magic (`PAGE_MAGIC`, little-endian) |
//! | 8      | 8     | page number (self-describing: a page written to the wrong offset is caught) |
//! | 16     | 8     | payload length (≤ 8160) |
//! | 24     | 8     | FNV-1a checksum over the payload, seeded with the page number |
//! | 32     | 8160  | payload (zero-padded past the payload length) |
//!
//! An **all-zero** page is a page that was never written (sparse file
//! reads past the high-water mark) and reads back as an empty payload.
//! Anything else must carry a valid header and checksum; a mismatch is a
//! torn or corrupted write and surfaces as
//! [`Error::StoreFailure`] with op `"page checksum"` — the reopen-time
//! verification pass ([`PageFile::verify`]) is what turns a crash mid
//! `write(2)` into a detected error instead of silent corruption.

use crate::inject::{OsFs, Vfs, VfsFile};
use crate::{fnv1a, io_err, FNV_OFFSET};
use hdidx_core::{Error, Result};
use std::path::Path;

/// On-disk page size, fixed at the paper's 8 KiB.
pub const PAGE_BYTES: usize = 8192;
/// Bytes of header per page.
pub const HEADER_BYTES: usize = 32;
/// Usable payload bytes per page.
pub const PAYLOAD_BYTES: usize = PAGE_BYTES - HEADER_BYTES;

/// Magic tag of a written page ("HDIXPAGE" little-endian-ish).
const PAGE_MAGIC: u64 = 0x4844_4958_5041_4745;

/// Checksum of a page's payload, bound to its page number so a page
/// written to the wrong slot fails verification too.
fn page_checksum(page_no: u64, payload: &[u8]) -> u64 {
    fnv1a(fnv1a(FNV_OFFSET, &page_no.to_le_bytes()), payload)
}

/// A page-granular file of checksummed 8 KiB pages.
#[derive(Debug)]
pub struct PageFile {
    file: Box<dyn VfsFile>,
    /// High-water mark: number of page slots the file currently spans.
    pages: u64,
}

impl PageFile {
    /// Opens (creating if missing) the page file at `path` and verifies
    /// **every** existing page's header and checksum — torn-write
    /// detection on reopen.
    ///
    /// # Errors
    ///
    /// OS errors, a file length that is not a multiple of [`PAGE_BYTES`],
    /// or any page failing verification.
    pub fn open(path: &Path) -> Result<PageFile> {
        let pf = PageFile::open_deferred(path)?;
        pf.verify()?;
        Ok(pf)
    }

    /// Opens the page file **without** the verification pass. For callers
    /// that must tolerate torn pages the write-ahead log is about to
    /// repair — they run [`PageFile::verify_skipping`] over the
    /// WAL-covered set instead.
    ///
    /// # Errors
    ///
    /// OS errors, or a file length that is not a multiple of
    /// [`PAGE_BYTES`].
    pub fn open_deferred(path: &Path) -> Result<PageFile> {
        PageFile::open_deferred_in(&OsFs, path)
    }

    /// [`PageFile::open_deferred`] against a caller-supplied filesystem
    /// (e.g. the crash-injected [`InjectedFs`](crate::InjectedFs)).
    ///
    /// # Errors
    ///
    /// As [`PageFile::open_deferred`].
    pub fn open_deferred_in(fs: &dyn Vfs, path: &Path) -> Result<PageFile> {
        let file = fs.open(path).map_err(|e| io_err("pagefile open", e))?;
        let len = file.len().map_err(|e| io_err("pagefile stat", e))?;
        if len % PAGE_BYTES as u64 != 0 {
            return Err(Error::StoreFailure {
                op: "pagefile open",
                detail: format!("length {len} is not a multiple of {PAGE_BYTES}"),
            });
        }
        Ok(PageFile {
            file,
            pages: len / PAGE_BYTES as u64,
        })
    }

    /// Number of page slots the file spans.
    #[must_use]
    pub fn pages(&self) -> u64 {
        self.pages
    }

    /// Verifies every page slot: all-zero (never written) or a valid
    /// header + checksum.
    ///
    /// # Errors
    ///
    /// [`Error::StoreFailure`] naming the first bad page.
    pub fn verify(&self) -> Result<()> {
        self.verify_skipping(|_| false)
    }

    /// Verifies every page slot except those for which `skip` returns
    /// true — the WAL-covered pages a recovery replay is about to
    /// rewrite, whose torn state is repairable rather than fatal.
    ///
    /// # Errors
    ///
    /// [`Error::StoreFailure`] naming the first bad non-skipped page.
    pub fn verify_skipping(&self, skip: impl Fn(u64) -> bool) -> Result<()> {
        let mut buf = [0u8; PAGE_BYTES];
        for p in 0..self.pages {
            if skip(p) {
                continue;
            }
            self.read_raw(p, &mut buf)?;
            Self::decode(p, &buf)?;
        }
        Ok(())
    }

    /// Verifies a single page slot (header + checksum, or all-zero).
    ///
    /// # Errors
    ///
    /// OS errors and verification failures — the per-page probe the
    /// scrub pass uses to find corrupt or torn pages.
    pub fn check_page(&self, page_no: u64) -> Result<()> {
        let mut buf = [0u8; PAGE_BYTES];
        self.read_raw(page_no, &mut buf)?;
        Self::decode(page_no, &buf).map(|_| ())
    }

    /// Quarantines page `page_no`: overwrites the whole slot with zeros,
    /// turning it back into an "unwritten" page that reads as an empty
    /// payload and passes verification. Used by the scrub pass for
    /// corrupt pages no redo source can re-materialize.
    ///
    /// # Errors
    ///
    /// OS errors.
    pub fn quarantine(&mut self, page_no: u64) -> Result<()> {
        let zeros = [0u8; PAGE_BYTES];
        self.file
            .write_all_at(&zeros, page_no * PAGE_BYTES as u64)
            .map_err(|e| io_err("pagefile quarantine", e))?;
        self.pages = self.pages.max(page_no + 1);
        Ok(())
    }

    fn read_raw(&self, page_no: u64, buf: &mut [u8; PAGE_BYTES]) -> Result<()> {
        self.file
            .read_exact_at(buf, page_no * PAGE_BYTES as u64)
            .map_err(|e| io_err("pagefile read", e))
    }

    /// Parses and verifies one raw page image; `Ok(None)` for an all-zero
    /// (unwritten) slot, otherwise the payload length.
    fn decode(page_no: u64, buf: &[u8; PAGE_BYTES]) -> Result<Option<usize>> {
        if buf.iter().all(|&b| b == 0) {
            return Ok(None);
        }
        let word = |i: usize| u64::from_le_bytes(buf[i * 8..i * 8 + 8].try_into().unwrap());
        if word(0) != PAGE_MAGIC {
            return Err(Error::StoreFailure {
                op: "page magic",
                detail: format!("page {page_no} has bad magic {:#018x}", word(0)),
            });
        }
        if word(1) != page_no {
            return Err(Error::StoreFailure {
                op: "page number",
                detail: format!("page {page_no} claims to be page {}", word(1)),
            });
        }
        let payload_len = word(2) as usize;
        if payload_len > PAYLOAD_BYTES {
            return Err(Error::StoreFailure {
                op: "page length",
                detail: format!("page {page_no} claims {payload_len} payload bytes"),
            });
        }
        let expect = page_checksum(page_no, &buf[HEADER_BYTES..HEADER_BYTES + payload_len]);
        if word(3) != expect {
            return Err(Error::StoreFailure {
                op: "page checksum",
                detail: format!("page {page_no} checksum mismatch (torn or corrupted write)"),
            });
        }
        Ok(Some(payload_len))
    }

    /// Writes `payload` (≤ [`PAYLOAD_BYTES`]) as page `page_no`, growing
    /// the file as needed. Does **not** fsync — durability is the
    /// caller's policy.
    ///
    /// # Errors
    ///
    /// Oversized payloads and OS errors.
    pub fn write_page(&mut self, page_no: u64, payload: &[u8]) -> Result<()> {
        if payload.len() > PAYLOAD_BYTES {
            return Err(Error::invalid(
                "payload",
                format!(
                    "{} bytes exceeds the {PAYLOAD_BYTES}-byte payload",
                    payload.len()
                ),
            ));
        }
        let mut buf = [0u8; PAGE_BYTES];
        buf[0..8].copy_from_slice(&PAGE_MAGIC.to_le_bytes());
        buf[8..16].copy_from_slice(&page_no.to_le_bytes());
        buf[16..24].copy_from_slice(&(payload.len() as u64).to_le_bytes());
        buf[24..32].copy_from_slice(&page_checksum(page_no, payload).to_le_bytes());
        buf[HEADER_BYTES..HEADER_BYTES + payload.len()].copy_from_slice(payload);
        self.file
            .write_all_at(&buf, page_no * PAGE_BYTES as u64)
            .map_err(|e| io_err("pagefile write", e))?;
        self.pages = self.pages.max(page_no + 1);
        Ok(())
    }

    /// Reads page `page_no` into `out` (exactly [`PAYLOAD_BYTES`] long,
    /// zero-padded past the stored payload). Unwritten slots — beyond the
    /// file end or all-zero — read as all zeros.
    ///
    /// # Errors
    ///
    /// OS errors and verification failures.
    pub fn read_page(&self, page_no: u64, out: &mut [u8]) -> Result<()> {
        debug_assert_eq!(out.len(), PAYLOAD_BYTES);
        out.fill(0);
        if page_no >= self.pages {
            return Ok(());
        }
        let mut buf = [0u8; PAGE_BYTES];
        self.read_raw(page_no, &mut buf)?;
        if let Some(len) = Self::decode(page_no, &buf)? {
            out[..len].copy_from_slice(&buf[HEADER_BYTES..HEADER_BYTES + len]);
        }
        Ok(())
    }

    /// fsyncs the page file.
    ///
    /// # Errors
    ///
    /// OS errors.
    pub fn sync(&mut self) -> Result<()> {
        self.file
            .sync_all()
            .map_err(|e| io_err("pagefile fsync", e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs::OpenOptions;
    use std::io::{Seek, SeekFrom, Write};

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("hdidx_pagefile_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn round_trips_and_survives_reopen() {
        let dir = tmpdir("roundtrip");
        let path = dir.join("pages.db");
        let mut pf = PageFile::open(&path).unwrap();
        let payload: Vec<u8> = (0..PAYLOAD_BYTES).map(|i| (i % 251) as u8).collect();
        pf.write_page(3, &payload).unwrap();
        pf.write_page(0, b"hello").unwrap();
        pf.sync().unwrap();
        drop(pf);

        let pf = PageFile::open(&path).unwrap();
        assert_eq!(pf.pages(), 4);
        let mut out = vec![0u8; PAYLOAD_BYTES];
        pf.read_page(3, &mut out).unwrap();
        assert_eq!(out, payload);
        pf.read_page(0, &mut out).unwrap();
        assert_eq!(&out[..5], b"hello");
        assert!(out[5..].iter().all(|&b| b == 0));
        // Unwritten slots (1, 2, and beyond the end) read as zeros.
        pf.read_page(1, &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 0));
        pf.read_page(99, &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 0));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_write_is_detected_on_reopen() {
        let dir = tmpdir("torn");
        let path = dir.join("pages.db");
        let mut pf = PageFile::open(&path).unwrap();
        pf.write_page(1, &[7u8; 100]).unwrap();
        pf.sync().unwrap();
        drop(pf);
        // Flip one payload byte of page 1 — a torn write.
        let mut f = OpenOptions::new().write(true).open(&path).unwrap();
        f.seek(SeekFrom::Start(
            PAGE_BYTES as u64 + HEADER_BYTES as u64 + 10,
        ))
        .unwrap();
        f.write_all(&[0xEE]).unwrap();
        drop(f);
        let err = PageFile::open(&path).unwrap_err();
        assert!(
            matches!(
                err,
                Error::StoreFailure {
                    op: "page checksum",
                    ..
                }
            ),
            "{err}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn oversized_payload_rejected() {
        let dir = tmpdir("oversize");
        let mut pf = PageFile::open(&dir.join("pages.db")).unwrap();
        assert!(pf.write_page(0, &vec![0u8; PAYLOAD_BYTES + 1]).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
