//! Scrub-and-repair: walk every page of a store directory verifying
//! FNV-1a checksums, re-materialize what a redo source can rebuild, and
//! quarantine what nothing can.
//!
//! The pass is deliberately more forgiving than [`FileStore::open`]
//! (which *fails* on a corrupt page no WAL batch covers): scrubbing is
//! what an operator runs — or the serving reopen path consults — when a
//! store comes back from a crash or from media decay. Per page:
//!
//! 1. all-zero or valid header + checksum → clean, untouched;
//! 2. corrupt, but a committed WAL batch carries a newer image of the
//!    page → **repaired** (rewritten from the WAL; the recovery replay
//!    would have done the same);
//! 3. corrupt with no redo source → **quarantined**: the slot is
//!    zeroed back to "unwritten" so the store reopens cleanly, and the
//!    loss is reported instead of failing every subsequent open.
//!
//! A snapshot-set scrub ([`crate::SnapshotSet::scrub`]) adds the next
//! repair tier: if the current generation no longer loads even after
//! page repair, it falls back to the most recent older generation that
//! does — the "re-materialize from the last durable snapshot
//! generation" path.
//!
//! [`FileStore::open`]: crate::FileStore::open

use crate::inject::Vfs;
use crate::pagefile::PageFile;
use crate::wal::Wal;
use hdidx_core::Result;
use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;

/// Outcome of one scrub pass, in pages.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// Page slots examined.
    pub pages_scanned: u64,
    /// Slots that failed header/checksum verification.
    pub pages_corrupt: u64,
    /// Corrupt slots rewritten from a committed WAL image.
    pub pages_repaired: u64,
    /// Corrupt slots with no redo source, zeroed back to "unwritten".
    pub pages_quarantined: u64,
    /// Committed WAL batches available as a redo source.
    pub wal_batches: u64,
    /// The snapshot generation the report describes (snapshot-set
    /// scrubs only).
    pub generation: Option<u64>,
    /// Whether a snapshot-set scrub had to fall back to an older
    /// generation; the page counts then describe the generation served.
    pub fell_back: bool,
}

impl ScrubReport {
    /// Whether every page verified clean (nothing repaired or lost).
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.pages_corrupt == 0 && !self.fell_back
    }
}

impl fmt::Display for ScrubReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "scrubbed {} pages: {} corrupt ({} repaired from {} WAL batches, {} quarantined)",
            self.pages_scanned,
            self.pages_corrupt,
            self.pages_repaired,
            self.wal_batches,
            self.pages_quarantined
        )?;
        if let Some(g) = self.generation {
            write!(
                f,
                " [generation {g}{}]",
                if self.fell_back { ", fell back" } else { "" }
            )?;
        }
        Ok(())
    }
}

/// Scrubs the store directory at `dir` (a `pages.db` + `wal.log` pair)
/// in place. See the module docs for the per-page policy. The WAL is
/// left untouched — a subsequent [`FileStore::open`](crate::FileStore)
/// replays it over the repaired page file as usual.
///
/// # Errors
///
/// OS errors; corruption itself never fails the pass.
pub fn scrub_store_in(fs: &dyn Vfs, dir: &Path) -> Result<ScrubReport> {
    scrub_pages_in(fs, dir, 0, u64::MAX)
}

/// Number of page slots the store directory at `dir` holds — the bound an
/// incremental scrubber walks with [`scrub_pages_in`].
///
/// # Errors
///
/// OS errors opening the page file.
pub fn store_pages_in(fs: &dyn Vfs, dir: &Path) -> Result<u64> {
    Ok(PageFile::open_deferred_in(fs, &dir.join("pages.db"))?.pages())
}

/// Scrubs one bounded slice of the store directory at `dir`: pages
/// `first_page .. first_page + n_pages`, clamped to the file. Per-page
/// policy is identical to [`scrub_store_in`] (which is the full-range
/// special case); the serve loop's maintenance scheduler calls this with
/// small slices so scrubbing interleaves with query service instead of
/// stalling it.
///
/// # Errors
///
/// OS errors; corruption itself never fails the pass.
pub fn scrub_pages_in(
    fs: &dyn Vfs,
    dir: &Path,
    first_page: u64,
    n_pages: u64,
) -> Result<ScrubReport> {
    let mut wal = Wal::open_in(fs, &dir.join("wal.log"))?;
    let batches = wal.recover()?;
    // The newest committed image of every WAL-covered page.
    let mut redo: BTreeMap<u64, &[u8]> = BTreeMap::new();
    for batch in &batches {
        for frame in &batch.frames {
            redo.insert(frame.page_no, &frame.payload);
        }
    }
    let mut pf = PageFile::open_deferred_in(fs, &dir.join("pages.db"))?;
    let mut report = ScrubReport {
        wal_batches: batches.len() as u64,
        ..ScrubReport::default()
    };
    let end = first_page.saturating_add(n_pages).min(pf.pages());
    for page in first_page..end {
        report.pages_scanned += 1;
        if pf.check_page(page).is_ok() {
            continue;
        }
        report.pages_corrupt += 1;
        match redo.get(&page) {
            Some(payload) => {
                pf.write_page(page, payload)?;
                report.pages_repaired += 1;
            }
            None => {
                pf.quarantine(page)?;
                report.pages_quarantined += 1;
            }
        }
    }
    if report.pages_corrupt > 0 {
        pf.sync()?;
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inject::{InjectedFs, OsFs};
    use crate::{Durability, FileStore, PAGE_BYTES, PAYLOAD_BYTES};
    use hdidx_diskio::{DiskOptions, PageStore};
    use std::path::PathBuf;
    use std::sync::Arc;

    fn payload(tag: u8) -> Vec<u8> {
        (0..PAYLOAD_BYTES)
            .map(|i| tag.wrapping_add((i % 13) as u8))
            .collect()
    }

    /// A checkpointed two-page store on the in-memory fs.
    fn seeded_store(fs: &InjectedFs, dir: &Path) -> hdidx_diskio::FileHandle {
        let mut st = FileStore::open_in(
            Arc::new(fs.clone()),
            dir,
            Durability::PerBatch,
            &DiskOptions::new(),
        )
        .unwrap();
        let f = st.alloc(4).unwrap();
        let mut data = payload(1);
        data.extend_from_slice(&payload(2));
        st.write_pages(&f, 0, 2, &data).unwrap();
        PageStore::sync(&mut st).unwrap();
        f
    }

    /// Flips one payload byte of `page` in the raw pages.db image.
    fn corrupt_page(fs: &InjectedFs, dir: &Path, page: u64) {
        let mut f = fs.open(&dir.join("pages.db")).unwrap();
        f.write_all_at(&[0xEE], page * PAGE_BYTES as u64 + 40)
            .unwrap();
    }

    #[test]
    fn a_clean_store_scrubs_clean() {
        let fs = InjectedFs::clean();
        let dir = PathBuf::from("/store");
        seeded_store(&fs, &dir);
        let report = scrub_store_in(&fs, &dir).unwrap();
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.pages_scanned, 2);
    }

    #[test]
    fn wal_covered_corruption_is_repaired() {
        let fs = InjectedFs::clean();
        let dir = PathBuf::from("/store");
        let f = seeded_store(&fs, &dir);
        // A second, un-checkpointed batch over page 1 leaves its image
        // in the WAL; then the checkpointed copy of page 1 decays.
        let mut st = FileStore::open_in(
            Arc::new(fs.clone()),
            &dir,
            Durability::PerBatch,
            &DiskOptions::new(),
        )
        .unwrap();
        let f2 = hdidx_diskio::FileHandle::from_raw(f.start_page(), f.pages());
        st.write_pages(&f2, 1, 1, &payload(9)).unwrap();
        drop(st); // crash: batch lives only in the WAL
        corrupt_page(&fs, &dir, 1);

        let report = scrub_store_in(&fs, &dir).unwrap();
        assert_eq!(report.pages_corrupt, 1, "{report}");
        assert_eq!(report.pages_repaired, 1, "{report}");
        assert_eq!(report.pages_quarantined, 0, "{report}");

        let mut st = FileStore::open_in(
            Arc::new(fs.clone()),
            &dir,
            Durability::PerBatch,
            &DiskOptions::new(),
        )
        .unwrap();
        let mut back = vec![0u8; PAYLOAD_BYTES];
        st.read_pages(&f2, 1, 1, &mut back).unwrap();
        assert_eq!(back, payload(9), "repaired page serves the WAL image");
    }

    #[test]
    fn unrepairable_corruption_is_quarantined_and_the_store_reopens() {
        let fs = InjectedFs::clean();
        let dir = PathBuf::from("/store");
        let f = seeded_store(&fs, &dir);
        corrupt_page(&fs, &dir, 0); // WAL is empty: no redo source

        // Without scrubbing, reopening fails on the bad checksum.
        assert!(FileStore::open_in(
            Arc::new(fs.clone()),
            &dir,
            Durability::PerBatch,
            &DiskOptions::new()
        )
        .is_err());

        let report = scrub_store_in(&fs, &dir).unwrap();
        assert_eq!(report.pages_corrupt, 1, "{report}");
        assert_eq!(report.pages_quarantined, 1, "{report}");

        let mut st = FileStore::open_in(
            Arc::new(fs.clone()),
            &dir,
            Durability::PerBatch,
            &DiskOptions::new(),
        )
        .unwrap();
        let f2 = hdidx_diskio::FileHandle::from_raw(f.start_page(), f.pages());
        let mut back = vec![0u8; PAYLOAD_BYTES];
        st.read_pages(&f2, 0, 1, &mut back).unwrap();
        assert!(back.iter().all(|&b| b == 0), "quarantined page reads zero");
        st.read_pages(&f2, 1, 1, &mut back).unwrap();
        assert_eq!(back, payload(2), "untouched pages keep their bytes");
    }

    #[test]
    fn slice_scrubs_compose_to_the_full_pass() {
        let fs = InjectedFs::clean();
        let dir = PathBuf::from("/store");
        seeded_store(&fs, &dir);
        corrupt_page(&fs, &dir, 1); // no WAL redo -> quarantine
        assert_eq!(store_pages_in(&fs, &dir).unwrap(), 2);

        // A slice that misses the bad page repairs nothing.
        let r0 = scrub_pages_in(&fs, &dir, 0, 1).unwrap();
        assert_eq!(r0.pages_scanned, 1);
        assert!(r0.is_clean(), "{r0}");
        // The slice covering it quarantines exactly like the full pass.
        let r1 = scrub_pages_in(&fs, &dir, 1, 1).unwrap();
        assert_eq!(r1.pages_scanned, 1);
        assert_eq!(r1.pages_quarantined, 1, "{r1}");
        // Out-of-range slices clamp instead of failing.
        let r2 = scrub_pages_in(&fs, &dir, 2, 100).unwrap();
        assert_eq!(r2.pages_scanned, 0);
        let full = scrub_store_in(&fs, &dir).unwrap();
        assert!(full.is_clean(), "slices already cleaned the store: {full}");
    }

    #[test]
    fn scrub_runs_on_the_real_filesystem_too() {
        let dir = std::env::temp_dir().join(format!("hdidx_scrub_os_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut st = FileStore::open(&dir, Durability::PerBatch, &DiskOptions::new()).unwrap();
        let f = st.alloc(2).unwrap();
        st.write_pages(&f, 0, 1, &payload(4)).unwrap();
        PageStore::sync(&mut st).unwrap();
        drop(st);
        let report = scrub_store_in(&OsFs, &dir).unwrap();
        assert!(report.is_clean(), "{report}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
