//! Crash-point sweep: the exhaustive crash-consistency contract under
//! the injected filesystem.
//!
//! [`InjectedFs`] counts every open/read/write/truncate/fsync the store
//! issues, and `InjectSpec::crash_at(seed, K)` freezes the filesystem at
//! op `K`. Sweeping `K` over a probe run's full op count therefore
//! simulates a power cut **between every pair of I/O operations the
//! store ever performs** — not just at the batch boundaries the WAL-cut
//! tests in `crash_consistency.rs` exercise. After each crash,
//! [`InjectedFs::power_cut`] resolves what the platter kept (durable
//! image plus a seeded whole/torn/dropped roll per un-fsynced write),
//! and the store must reopen to a **batch-boundary prefix** of the
//! history bounded below by the durability mode's fsync cadence.
//!
//! The same sweep runs over [`SnapshotSet::publish`]: a crash at any op
//! of a second publish must leave either the old or the new generation
//! fully loadable.
//!
//! Two identity legs pin the seam itself: recovery images are
//! byte-identical across 1/2/8 worker threads, and with zero injection
//! the in-memory filesystem behaves bitwise like the real one (same
//! file bytes, same charged stats) — the [`OsFs`] production path is a
//! pure passthrough.

use hdidx_core::HyperRect;
use hdidx_diskio::{DiskOptions, FileHandle, PageStore};
use hdidx_rand::splitmix::derive_seed;
use hdidx_store::{Durability, FileStore, InjectSpec, InjectedFs, SnapshotSet, Vfs, PAYLOAD_BYTES};
use hdidx_vamsplit::tree::{Node, NodeKind, RTree};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Address space each history writes into.
const SPAN: u64 = 16;
/// Store directory on the injected filesystem.
const DIR: &str = "/store";

/// Base seed of the sweeps; `HDIDX_CRASH_SEED` reseeds them so the CI
/// chaos legs cover independent histories and survival rolls.
fn sweep_seed() -> u64 {
    std::env::var("HDIDX_CRASH_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x51EE9)
}

/// The `b`-th batch of history `seed`: a page range and its payload
/// (same construction as `crash_consistency.rs`; never all-zero).
fn batch(seed: u64, b: usize) -> (u64, u64, Vec<u8>) {
    let h = derive_seed(seed, b as u64);
    let n_pages = 1 + (h >> 8) % 3;
    let first = (h % SPAN).min(SPAN - n_pages);
    let bytes = (0..n_pages as usize * PAYLOAD_BYTES)
        .map(|i| (h as usize).wrapping_mul(31).wrapping_add(i * 7) as u8)
        .collect();
    (first, n_pages, bytes)
}

/// Expected page contents after each prefix of the history:
/// `states[j]` = pages after the first `j` batches.
fn states(seed: u64, n_batches: usize) -> Vec<BTreeMap<u64, Vec<u8>>> {
    let mut states = vec![BTreeMap::new()];
    for b in 0..n_batches {
        let (first, n_pages, bytes) = batch(seed, b);
        let mut next = states.last().unwrap().clone();
        for i in 0..n_pages as usize {
            next.insert(
                first + i as u64,
                bytes[i * PAYLOAD_BYTES..(i + 1) * PAYLOAD_BYTES].to_vec(),
            );
        }
        states.push(next);
    }
    states
}

/// Drops all-zero pages from an expected state so it compares against
/// what a reopen can observe (recovery cannot distinguish "never
/// written" from "written as zeros"; the seeded payloads are never
/// all-zero).
fn nonzero(state: &BTreeMap<u64, Vec<u8>>) -> BTreeMap<u64, Vec<u8>> {
    state
        .iter()
        .filter(|(_, v)| v.iter().any(|&b| b != 0))
        .map(|(k, v)| (*k, v.clone()))
        .collect()
}

/// Replays the history against a store on `fs`, stopping at the first
/// error (the injected crash freezes every later op too). Returns how
/// many batches' `write_pages` returned `Ok`.
fn run_history_on(fs: &InjectedFs, seed: u64, mode: Durability, n_batches: usize) -> usize {
    let vfs: Arc<dyn Vfs> = Arc::new(fs.clone());
    let Ok(mut st) = FileStore::open_in(vfs, Path::new(DIR), mode, &DiskOptions::new()) else {
        return 0;
    };
    let Ok(f) = st.alloc(SPAN) else { return 0 };
    let mut completed = 0;
    for b in 0..n_batches {
        let (first, n_pages, bytes) = batch(seed, b);
        if st.write_pages(&f, first, n_pages, &bytes).is_err() {
            break;
        }
        completed += 1;
    }
    completed // drop is the crash model: no flush, no fsync
}

/// Reopens the store on `fs` (running recovery) and reads back every
/// non-zero page.
fn recovered(fs: &InjectedFs, mode: Durability) -> BTreeMap<u64, Vec<u8>> {
    let vfs: Arc<dyn Vfs> = Arc::new(fs.clone());
    let mut st = FileStore::open_in(vfs, Path::new(DIR), mode, &DiskOptions::new())
        .expect("recovery on a post-power-cut image must succeed");
    let mut out = BTreeMap::new();
    for p in 0..st.pages() {
        let f = FileHandle::from_raw(p, 1);
        let mut buf = vec![0u8; PAYLOAD_BYTES];
        st.read_pages(&f, 0, 1, &mut buf).unwrap();
        if buf.iter().any(|&b| b != 0) {
            out.insert(p, buf);
        }
    }
    out
}

/// Batches guaranteed durable after `completed` successful batches:
/// the fsync cadence's floor.
fn durable_floor(mode: Durability, completed: usize) -> usize {
    match mode {
        Durability::PerBatch => completed,
        Durability::EveryN(n) => completed - completed % n as usize,
        Durability::None => 0,
    }
}

#[test]
fn a_crash_at_every_op_recovers_a_mode_bounded_batch_prefix() {
    let n_batches = 6;
    for (mi, &mode) in Durability::SWEEP.iter().enumerate() {
        let seed = derive_seed(sweep_seed(), mi as u64);
        // Probe: a clean run counts the ops the full history issues.
        let probe = InjectedFs::clean();
        assert_eq!(run_history_on(&probe, seed, mode, n_batches), n_batches);
        let total_ops = probe.ops();
        assert!(total_ops > 20, "the history must issue real I/O");
        let all = states(seed, n_batches);

        for k in 0..total_ops {
            let fs = InjectedFs::new(InjectSpec::crash_at(seed, k));
            let completed = run_history_on(&fs, seed, mode, n_batches);
            let got = recovered(&fs.power_cut(), mode);

            // The recovered image must be the history cut at a batch
            // boundary: at least the fsync-covered prefix, at most one
            // batch past the last acknowledged one (a crash inside the
            // acknowledging fsync can still leave the batch recoverable).
            let floor = durable_floor(mode, completed);
            let ceil = (completed + 1).min(n_batches);
            let matched = (floor..=ceil).find(|&j| got == nonzero(&all[j]));
            assert!(
                matched.is_some(),
                "mode {mode}, crash at op {k}/{total_ops}: {completed} batches acked, \
                 recovered pages {:?} match no state in {floor}..={ceil}",
                got.keys().collect::<Vec<_>>()
            );
        }
    }
}

/// A 2-d tree small enough to publish hundreds of times.
fn tree_v1() -> RTree {
    let leaf = |lo: f32, hi: f32, range: std::ops::Range<u32>| Node {
        level: 1,
        rect: HyperRect::new(vec![lo, lo], vec![hi, hi]).unwrap(),
        kind: NodeKind::Leaf { entries: range },
    };
    let root = Node {
        level: 2,
        rect: HyperRect::new(vec![0.0, 0.0], vec![4.0, 4.0]).unwrap(),
        kind: NodeKind::Inner {
            children: vec![1, 2, 3],
        },
    };
    let nodes = vec![
        root,
        leaf(0.0, 1.0, 0..3),
        leaf(1.5, 2.5, 3..5),
        leaf(3.0, 4.0, 5..9),
    ];
    RTree::from_arenas(2, 2, 1, nodes, (0..9).rev().collect()).unwrap()
}

/// A second tree distinguishable from [`tree_v1`] (entry order).
fn tree_v2() -> RTree {
    RTree::from_arenas(2, 2, 1, tree_v1().nodes().to_vec(), (0..9).collect()).unwrap()
}

#[test]
fn a_crash_anywhere_in_a_publish_leaves_a_generation_loadable() {
    let root = PathBuf::from("/snaps");
    let publish_both = |fs: &InjectedFs| -> (u64, u64, bool) {
        let Ok(set) = SnapshotSet::open_in(Arc::new(fs.clone()), &root, Durability::PerBatch)
        else {
            return (fs.ops(), fs.ops(), false);
        };
        if set.publish(&tree_v1(), &DiskOptions::new()).is_err() {
            return (fs.ops(), fs.ops(), false);
        }
        let after_first = fs.ops();
        let second_ok = set.publish(&tree_v2(), &DiskOptions::new()).is_ok();
        (after_first, fs.ops(), second_ok)
    };

    // Probe: the clean publish sequence and its op boundaries.
    let probe = InjectedFs::clean();
    let (after_first, total_ops, ok) = publish_both(&probe);
    assert!(ok && after_first < total_ops);

    for k in 0..total_ops {
        let fs = InjectedFs::new(InjectSpec::crash_at(derive_seed(sweep_seed(), 7), k));
        publish_both(&fs);
        let after = fs.power_cut();
        let set = SnapshotSet::open_in(Arc::new(after), &root, Durability::PerBatch).unwrap();
        match set.load(&DiskOptions::new()) {
            Ok((tree, generation, _)) => {
                let v1 = generation == 1 && tree == tree_v1();
                let v2 = generation == 2 && tree == tree_v2();
                assert!(
                    v1 || v2,
                    "crash at op {k}/{total_ops}: generation {generation} loaded \
                     but matches neither published tree"
                );
                // Once the first commit is durable, nothing may unpublish it.
                assert!(
                    k < after_first || generation >= 1,
                    "crash at op {k} rolled back past a durable commit"
                );
            }
            Err(e) => {
                // Only acceptable while the *first* generation's commit
                // could still be in flight.
                assert!(
                    k < after_first,
                    "crash at op {k}/{total_ops} (after the first durable \
                     commit at {after_first}) must leave a loadable generation: {e}"
                );
            }
        }
    }
}

#[test]
fn crash_recovery_is_byte_identical_across_thread_counts() {
    let seed = 0xC0FFEE;
    let n_batches = 6;
    let probe = InjectedFs::clean();
    run_history_on(&probe, seed, Durability::EveryN(2), n_batches);
    let total_ops = probe.ops();

    let image_at = |k: u64| -> (BTreeMap<u64, Vec<u8>>, Vec<u8>) {
        let fs = InjectedFs::new(InjectSpec::crash_at(seed, k));
        run_history_on(&fs, seed, Durability::EveryN(2), n_batches);
        let after = fs.power_cut();
        let pages = recovered(&after, Durability::EveryN(2));
        let db = after.file_bytes(&Path::new(DIR).join("pages.db")).unwrap();
        (pages, db)
    };

    let sample: Vec<u64> = (0..total_ops).step_by(7).collect();
    let mut baseline = None;
    for threads in [1usize, 2, 8] {
        hdidx_pool::set_threads(threads);
        let run: Vec<_> = sample.iter().map(|&k| image_at(k)).collect();
        match &baseline {
            None => baseline = Some(run),
            Some(b) => assert_eq!(&run, b, "recovery moved at {threads} threads"),
        }
    }
}

#[test]
fn zero_injection_is_bitwise_identical_to_the_real_filesystem() {
    let seed = 0xBEEF;
    let n_batches = 5;
    let real_dir = std::env::temp_dir().join(format!("hdidx_sweep_os_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&real_dir);

    // The same history, checkpointed, against both filesystems.
    let drive = |st: &mut FileStore| {
        let f = st.alloc(SPAN).unwrap();
        for b in 0..n_batches {
            let (first, n_pages, bytes) = batch(seed, b);
            st.write_pages(&f, first, n_pages, &bytes).unwrap();
        }
        st.sync().unwrap();
        st.stats()
    };
    let mut real = FileStore::open(&real_dir, Durability::EveryN(2), &DiskOptions::new()).unwrap();
    let real_stats = drive(&mut real);
    drop(real);

    let fs = InjectedFs::clean();
    let vfs: Arc<dyn Vfs> = Arc::new(fs.clone());
    let mut injected = FileStore::open_in(
        vfs,
        Path::new(DIR),
        Durability::EveryN(2),
        &DiskOptions::new(),
    )
    .unwrap();
    let injected_stats = drive(&mut injected);
    drop(injected);

    assert_eq!(real_stats, injected_stats, "charging must not see the seam");
    for file in ["pages.db", "wal.log"] {
        let on_disk = std::fs::read(real_dir.join(file)).unwrap();
        let in_mem = fs.file_bytes(&Path::new(DIR).join(file)).unwrap();
        assert_eq!(
            on_disk, in_mem,
            "{file} diverged between OsFs and InjectedFs"
        );
    }
    std::fs::remove_dir_all(&real_dir).ok();
}

#[test]
fn every_n_boundaries_match_the_fsync_cadence_exactly() {
    let seed = 0xAB1E;
    let n_batches = 5;
    // ops(mode) − ops(None) counts exactly the WAL fsyncs the mode
    // issued: the histories are otherwise op-for-op identical.
    let ops_for = |mode: Durability| {
        let fs = InjectedFs::clean();
        assert_eq!(run_history_on(&fs, seed, mode, n_batches), n_batches);
        fs.ops()
    };
    let base = ops_for(Durability::None);
    assert_eq!(
        ops_for(Durability::PerBatch) - base,
        n_batches as u64,
        "per-batch fsyncs every commit"
    );
    assert_eq!(
        ops_for(Durability::EveryN(1)) - base,
        n_batches as u64,
        "every-1 must degenerate to per-batch"
    );
    assert_eq!(
        ops_for(Durability::EveryN(2)) - base,
        2,
        "every-2 fsyncs exactly on the 2nd and 4th commits"
    );
    assert_eq!(
        ops_for(Durability::EveryN(8)) - base,
        0,
        "N beyond the history never fsyncs the WAL"
    );

    // Power-cut consequences of those cadences. Fsynced bytes always
    // survive, so every-1 keeps the full history for ANY survival seed —
    // while every-8 (nothing fsynced) is at the mercy of the seeded
    // survival roll, and some seed loses the entire history.
    let all = states(seed, n_batches);
    let recovered_under = |mode: Durability, survival_seed: u64| {
        let fs = InjectedFs::new(InjectSpec::clean(survival_seed));
        assert_eq!(run_history_on(&fs, seed, mode, n_batches), n_batches);
        recovered(&fs.power_cut(), mode)
    };
    let mut none_lost_everything = false;
    for survival_seed in 0..24 {
        assert_eq!(
            recovered_under(Durability::EveryN(1), survival_seed),
            nonzero(&all[n_batches]),
            "every-1 must survive any power cut whole"
        );
        let loose = recovered_under(Durability::EveryN(8), survival_seed);
        // Always a batch-boundary prefix, never a torn mix.
        let j = (0..=n_batches).find(|&j| loose == nonzero(&all[j]));
        assert!(j.is_some(), "seed {survival_seed}: not a prefix");
        none_lost_everything |= j == Some(0);
    }
    assert!(
        none_lost_everything,
        "with no fsync coverage, some power cut must lose the whole history"
    );
}
