//! Crash-consistency contract for the file-backed page store.
//!
//! The crash model: dropping a [`FileStore`] without `sync()` is the
//! process dying (the store deliberately does nothing on drop), and
//! truncating `wal.log` afterwards is the device losing the un-fsynced
//! tail of the log. The property: for **any** seeded write history, any
//! durability mode, and any byte prefix the device kept, reopening
//! recovers *exactly* the batches whose commit records survived intact —
//! a prefix of the history, cut at a batch boundary, never a torn
//! half-batch. The deterministic leg pins the mode-specific guarantee
//! (what a power cut can take is bounded by the fsync cadence) and that
//! recovery is byte-identical across 1/2/8 worker threads.

use hdidx_check::{check, prop_assert, Config, Verdict};
use hdidx_diskio::{DiskOptions, FileHandle, PageStore};
use hdidx_rand::splitmix::derive_seed;
use hdidx_rand::Rng;
use hdidx_store::{Durability, FileStore, PAYLOAD_BYTES};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Address space each history writes into.
const SPAN: u64 = 16;

fn tmpdir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "hdidx_crash_{name}_{}_{}",
        std::process::id(),
        std::thread::current().name().unwrap_or("t").len()
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// The `b`-th batch of history `seed`: a page range and its payload.
fn batch(seed: u64, b: usize) -> (u64, u64, Vec<u8>) {
    let h = derive_seed(seed, b as u64);
    let n_pages = 1 + (h >> 8) % 3;
    let first = (h % SPAN).min(SPAN - n_pages);
    let bytes = (0..n_pages as usize * PAYLOAD_BYTES)
        .map(|i| (h as usize).wrapping_mul(31).wrapping_add(i * 7) as u8)
        .collect();
    (first, n_pages, bytes)
}

/// Replays `n_batches` of history `seed` against a fresh store in `dir`,
/// returning the WAL length recorded after each commit and the expected
/// page contents after each prefix of the history (`states[j]` = pages
/// after the first `j` batches).
fn run_history(
    dir: &Path,
    mode: Durability,
    seed: u64,
    n_batches: usize,
) -> (Vec<u64>, Vec<BTreeMap<u64, Vec<u8>>>) {
    let mut st = FileStore::open(dir, mode, &DiskOptions::new()).unwrap();
    let f = st.alloc(SPAN).unwrap();
    let mut lens = Vec::new();
    let mut states = vec![BTreeMap::new()];
    for b in 0..n_batches {
        let (first, n_pages, bytes) = batch(seed, b);
        st.write_pages(&f, first, n_pages, &bytes).unwrap();
        lens.push(st.wal_len());
        let mut next = states.last().unwrap().clone();
        for i in 0..n_pages as usize {
            next.insert(
                first + i as u64,
                bytes[i * PAYLOAD_BYTES..(i + 1) * PAYLOAD_BYTES].to_vec(),
            );
        }
        states.push(next);
    }
    drop(st); // crash: no checkpoint, Drop flushes nothing
    (lens, states)
}

/// The device kept only the first `keep` bytes of the log.
fn cut_wal(dir: &Path, keep: u64) {
    std::fs::OpenOptions::new()
        .write(true)
        .open(dir.join("wal.log"))
        .unwrap()
        .set_len(keep)
        .unwrap();
}

/// Reopens the store and reads back every page in the span, zero-filled
/// where nothing survived.
fn recovered_pages(dir: &Path, mode: Durability) -> BTreeMap<u64, Vec<u8>> {
    let mut st = FileStore::open(dir, mode, &DiskOptions::new()).unwrap();
    assert_eq!(
        st.wal_len(),
        0,
        "recovery must checkpoint and clear the WAL"
    );
    let mut out = BTreeMap::new();
    let pages = st.pages();
    for p in 0..pages {
        let f = FileHandle::from_raw(p, 1);
        let mut buf = vec![0u8; PAYLOAD_BYTES];
        st.read_pages(&f, 0, 1, &mut buf).unwrap();
        if buf.iter().any(|&b| b != 0) {
            out.insert(p, buf);
        }
    }
    out
}

/// Drops all-zero pages from an expected state so it compares against
/// [`recovered_pages`] (which cannot distinguish "never written" from
/// "written as zeros"; the seeded payloads are never all-zero).
fn nonzero(state: &BTreeMap<u64, Vec<u8>>) -> BTreeMap<u64, Vec<u8>> {
    state
        .iter()
        .filter(|(_, v)| v.iter().any(|&b| b != 0))
        .map(|(k, v)| (*k, v.clone()))
        .collect()
}

#[test]
fn any_kept_prefix_recovers_to_the_last_complete_batch() {
    check(
        "any_kept_prefix_recovers_to_the_last_complete_batch",
        &Config::with_cases(48),
        |rng| {
            (
                rng.next_u64(),
                rng.gen_range(1..=6usize),
                rng.gen_f64(),
                rng.gen_range(0..3usize),
            )
        },
        |&(seed, n_batches, cut_frac, mode_idx)| {
            let mode = Durability::SWEEP[mode_idx % Durability::SWEEP.len()];
            let dir = tmpdir("prefix");
            let (lens, states) = run_history(&dir, mode, seed, n_batches);

            let total = *lens.last().unwrap();
            let keep = (cut_frac.clamp(0.0, 1.0) * total as f64) as u64;
            cut_wal(&dir, keep);
            // The last batch whose commit record fits in the kept prefix.
            let survivors = lens.iter().filter(|&&l| l <= keep).count();

            let got = recovered_pages(&dir, mode);
            let want = nonzero(&states[survivors]);
            std::fs::remove_dir_all(&dir).ok();
            prop_assert!(
                got == want,
                "mode {mode}, kept {keep}/{total} B => {survivors} of {n_batches} batches; \
                 recovered pages {:?}, expected {:?}",
                got.keys().collect::<Vec<_>>(),
                want.keys().collect::<Vec<_>>()
            );
            Verdict::Pass
        },
    );
}

#[test]
fn fsync_cadence_bounds_what_a_power_cut_can_take() {
    // What each mode guarantees after 5 batches and a power cut that
    // drops every un-fsynced byte: per-batch keeps all 5, every-4 keeps
    // the 4 covered by its one fsync, none keeps nothing.
    let histories = [
        (Durability::PerBatch, 5usize),
        (Durability::EveryN(4), 4),
        (Durability::None, 0),
    ];
    for (mode, durable) in histories {
        let dir = tmpdir("cadence");
        let (lens, states) = run_history(&dir, mode, 0xfeed, 5);
        let keep = if durable == 0 { 0 } else { lens[durable - 1] };
        cut_wal(&dir, keep);
        let got = recovered_pages(&dir, mode);
        assert_eq!(
            got,
            nonzero(&states[durable]),
            "mode {mode} must retain exactly its {durable} fsynced batches"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn recovery_is_byte_identical_across_thread_counts() {
    let mut baseline = None;
    for threads in [1usize, 2, 8] {
        hdidx_pool::set_threads(threads);
        let dir = tmpdir("threads");
        let (lens, _) = run_history(&dir, Durability::EveryN(2), 0xc0ffee, 6);
        cut_wal(&dir, lens[3] + 7); // mid-frame torn tail after batch 4
        let got = recovered_pages(&dir, Durability::EveryN(2));
        std::fs::remove_dir_all(&dir).ok();
        match &baseline {
            None => baseline = Some(got),
            Some(b) => assert_eq!(&got, b, "recovery moved at {threads} threads"),
        }
    }
}
