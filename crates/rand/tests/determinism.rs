//! Golden-vector tests pinning the exact streams of `hdidx-rand`.
//!
//! These values are the **stream-stability contract**: seeds are part of
//! the workspace's public API (experiment outputs, `BENCH_*.json`
//! trajectories and paper tables are all keyed by seed), so the bit
//! streams below must never change. If a refactor breaks one of these
//! assertions, the refactor is wrong — not the test.

use hdidx_rand::{
    bernoulli_sample, reservoir_sample, sample_without_replacement, seeded, standard_normal, Rng,
    SplitMix64,
};

#[test]
fn splitmix64_stream_is_pinned() {
    let mut sm = SplitMix64::new(42);
    assert_eq!(
        [sm.next(), sm.next(), sm.next()],
        [
            13_679_457_532_755_275_413,
            2_949_826_092_126_892_291,
            5_139_283_748_462_763_858,
        ]
    );
}

#[test]
fn xoshiro_u64_streams_are_pinned() {
    let mut r = seeded(0);
    assert_eq!(
        [r.next_u64(), r.next_u64(), r.next_u64(), r.next_u64()],
        [
            5_987_356_902_031_041_503,
            7_051_070_477_665_621_255,
            6_633_766_593_972_829_180,
            211_316_841_551_650_330,
        ]
    );
    let mut r = seeded(42);
    assert_eq!(
        [r.next_u64(), r.next_u64(), r.next_u64(), r.next_u64()],
        [
            15_021_278_609_987_233_951,
            5_881_210_131_331_364_753,
            18_149_643_915_985_481_100,
            12_933_668_939_759_105_464,
        ]
    );
}

#[test]
fn derived_float_streams_are_pinned() {
    // f64: top 53 bits of the u64 stream scaled by 2^-53; compare exact
    // bit patterns, not approximate values.
    let mut r = seeded(42);
    let f64_bits: Vec<u64> = (0..4).map(|_| r.gen_f64().to_bits()).collect();
    let expected: Vec<u64> = [
        0.814_305_145_122_909_9_f64,
        0.318_821_040_061_661_1,
        0.983_894_168_177_488_8,
        0.701_135_598_134_755_6,
    ]
    .iter()
    .map(|f| f.to_bits())
    .collect();
    assert_eq!(f64_bits, expected);

    let mut r = seeded(42);
    let f32_bits: Vec<u32> = (0..6).map(|_| r.gen_f32().to_bits()).collect();
    assert_eq!(
        f32_bits,
        [
            1_062_237_773,
            1_050_885_250,
            1_065_083_004,
            1_060_339_103,
            1_061_888_796,
            1_058_442_655,
        ]
    );
}

#[test]
fn gen_range_stream_is_pinned() {
    let mut r = seeded(7);
    let drawn: Vec<usize> = (0..8).map(|_| r.gen_range(0..1000usize)).collect();
    assert_eq!(drawn, [55, 172, 717, 427, 963, 465, 723, 329]);
}

#[test]
fn standard_normal_stream_is_pinned() {
    let mut r = seeded(7);
    let bits: Vec<u64> = (0..4).map(|_| standard_normal(&mut r).to_bits()).collect();
    assert_eq!(
        bits,
        [
            4_594_883_772_175_463_710,
            13_832_476_381_460_757_368,
            13_836_218_315_391_149_946,
            13_828_496_285_524_393_514,
        ]
    );
}

#[test]
fn sampling_primitives_are_pinned_and_stream_positions_compose() {
    let mut r = seeded(11);
    assert_eq!(
        bernoulli_sample(&mut r, 60, 0.25),
        [6, 7, 14, 16, 20, 28, 29, 31, 34, 36, 38, 40, 43, 46, 47, 58, 59]
    );
    // The sample above consumed exactly 60 draws, so the follow-on draw
    // is itself pinned — guarding the *position* of the stream, not just
    // its values.
    assert_eq!(
        sample_without_replacement(&mut r, 50, 8),
        [11, 28, 30, 36, 41, 42, 43, 47]
    );

    let mut r = seeded(13);
    let mut v: Vec<u8> = (0..10).collect();
    r.fill_shuffle(&mut v);
    assert_eq!(v, [2, 7, 3, 8, 5, 1, 6, 4, 9, 0]);

    let mut r = seeded(17);
    assert_eq!(
        reservoir_sample(&mut r, 100, 10),
        [2, 10, 27, 28, 32, 37, 50, 68, 73, 89]
    );
}

#[test]
fn independent_runs_are_byte_identical() {
    let run = |seed: u64| -> Vec<u64> {
        let mut r = seeded(seed);
        let mut out: Vec<u64> = (0..64).map(|_| r.next_u64()).collect();
        out.extend((0..64).map(|_| r.gen_f64().to_bits()));
        out.extend(
            bernoulli_sample(&mut r, 512, 0.3)
                .iter()
                .map(|&x| u64::from(x)),
        );
        out
    };
    assert_eq!(run(3), run(3));
    assert_ne!(run(3), run(4));
}
