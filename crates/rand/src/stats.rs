//! Statistical sampling primitives used by the prediction pipeline:
//! Gaussian variates, Bernoulli scan samples (the paper's ζ-sampling),
//! Floyd's sampling without replacement (density-biased query draws) and
//! reservoir sampling (single-pass fixed-size samples for streaming
//! inputs).

use crate::traits::Rng;

/// Draws one standard-normal variate via the Box–Muller transform.
///
/// Consumes exactly two `f64` draws (so the stream position after a call
/// is seed-stable), and samples `u1` from `(0, 1]` to avoid `ln(0)`.
pub fn standard_normal<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = 1.0 - rng.gen_f64();
    let u2: f64 = rng.gen_f64();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Bernoulli sample of ids `0..n` with probability `fraction` each.
///
/// This is the sampling primitive of the paper's predictors: a single
/// scan over the data file in which each record independently enters the
/// sample with probability ζ. The result is sorted and duplicate-free by
/// construction.
///
/// Degenerate fractions are clamped rather than rejected so the scan is
/// total: `fraction >= 1` returns all ids without consuming any draws,
/// and `fraction <= 0` **or NaN** returns the empty sample. (A NaN ζ
/// would previously silently behave like 0 while still looking like a
/// valid probability to the caller; clamping it explicitly makes the
/// contract testable.)
pub fn bernoulli_sample<R: Rng>(rng: &mut R, n: usize, fraction: f64) -> Vec<u32> {
    if fraction >= 1.0 {
        return (0..n as u32).collect();
    }
    // `fraction.is_nan()` falls through both comparisons; fold it into the
    // empty case instead of scanning n draws that can never hit.
    if fraction <= 0.0 || fraction.is_nan() || n == 0 {
        return Vec::new();
    }
    // Pre-allocate mean + 4σ of the Binomial(n, fraction) size, capped at
    // n: the old `1.1 × mean` heuristic under-allocated for small means
    // (forcing reallocation-heavy growth) and over-allocated past n for
    // fractions near 1.
    let mean = fraction * n as f64;
    let sd = (mean * (1.0 - fraction)).sqrt();
    let cap = (mean + 4.0 * sd).ceil() as usize + 1;
    let mut ids = Vec::with_capacity(cap.min(n));
    for i in 0..n {
        if rng.gen_f64() < fraction {
            ids.push(i as u32);
        }
    }
    ids
}

/// Samples exactly `k` distinct ids from `0..n` uniformly at random
/// (Floyd's algorithm), returned in ascending order. Used to pick the
/// density-biased query points (reading q random records from the file,
/// paper Eq. 2). `k > n` is clamped to `n`.
pub fn sample_without_replacement<R: Rng>(rng: &mut R, n: usize, k: usize) -> Vec<u32> {
    let k = k.min(n);
    let mut chosen = std::collections::BTreeSet::new();
    for j in (n - k)..n {
        let t = rng.gen_range(0..=j) as u32;
        if !chosen.insert(t) {
            chosen.insert(j as u32);
        }
    }
    chosen.into_iter().collect()
}

/// Reservoir sample (Algorithm R) of `k` items from an iterator of
/// unknown length, preserving first-seen order within the reservoir.
///
/// Every element of the stream ends up in the sample with probability
/// `k / len` once the stream is longer than `k`; shorter streams are
/// returned whole. This is the primitive for sampling from sources that
/// cannot be indexed (external merge runs, page streams), where the
/// Bernoulli scan's fixed ζ would give a size that drifts with `len`.
pub fn reservoir_sample_iter<R: Rng, T, I>(rng: &mut R, iter: I, k: usize) -> Vec<T>
where
    I: IntoIterator<Item = T>,
{
    let mut reservoir: Vec<T> = Vec::with_capacity(k);
    if k == 0 {
        return reservoir;
    }
    for (i, item) in iter.into_iter().enumerate() {
        if i < k {
            reservoir.push(item);
        } else {
            let j = rng.gen_range(0..=i);
            if j < k {
                reservoir[j] = item;
            }
        }
    }
    reservoir
}

/// Reservoir sample of `k` ids from `0..n`, returned in ascending order
/// (the id-domain convenience wrapper over [`reservoir_sample_iter`]).
pub fn reservoir_sample<R: Rng>(rng: &mut R, n: usize, k: usize) -> Vec<u32> {
    let mut ids = reservoir_sample_iter(rng, 0..n as u32, k);
    ids.sort_unstable();
    ids
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seeded;

    #[test]
    fn standard_normal_moments() {
        let mut rng = seeded(42);
        let n = 50_000;
        let (mut sum, mut sum2) = (0.0, 0.0);
        for _ in 0..n {
            let x = standard_normal(&mut rng);
            assert!(x.is_finite());
            sum += x;
            sum2 += x * x;
        }
        let mean = sum / f64::from(n);
        let var = sum2 / f64::from(n) - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn bernoulli_sample_rate_and_bounds() {
        let mut rng = seeded(1);
        let ids = bernoulli_sample(&mut rng, 100_000, 0.1);
        let rate = ids.len() as f64 / 100_000.0;
        assert!((rate - 0.1).abs() < 0.01, "rate {rate}");
        assert!(ids.windows(2).all(|w| w[0] < w[1]), "sorted & distinct");
    }

    #[test]
    fn bernoulli_sample_edge_cases() {
        let mut rng = seeded(2);
        // fraction <= 0: empty, including negative and -0.0.
        assert!(bernoulli_sample(&mut rng, 10, 0.0).is_empty());
        assert!(bernoulli_sample(&mut rng, 10, -0.5).is_empty());
        // fraction >= 1: everything, even far above 1.
        assert_eq!(bernoulli_sample(&mut rng, 10, 1.0).len(), 10);
        assert_eq!(bernoulli_sample(&mut rng, 10, 2.0).len(), 10);
        // n = 0: empty for every fraction.
        assert!(bernoulli_sample(&mut rng, 0, 0.5).is_empty());
        assert!(bernoulli_sample(&mut rng, 0, 1.0).is_empty());
        // NaN fraction: defined as the empty sample, not a scan of misses.
        let before = rng.clone();
        assert!(bernoulli_sample(&mut rng, 10, f64::NAN).is_empty());
        // ... and it must not consume any stream positions.
        assert_eq!(rng, before, "NaN fraction consumed RNG draws");
    }

    #[test]
    fn bernoulli_sample_capacity_is_tight() {
        // The 4σ heuristic must avoid reallocation in the typical case and
        // never reserve more than n.
        let mut rng = seeded(3);
        for &(n, f) in &[(100_000usize, 0.1f64), (50_000, 0.9), (1_000, 0.999)] {
            let ids = bernoulli_sample(&mut rng, n, f);
            assert!(ids.capacity() <= n, "cap {} > n {n}", ids.capacity());
            assert!(ids.len() <= ids.capacity());
        }
    }

    #[test]
    fn sample_without_replacement_properties() {
        let mut rng = seeded(3);
        let s = sample_without_replacement(&mut rng, 1000, 50);
        assert_eq!(s.len(), 50);
        assert!(s.windows(2).all(|w| w[0] < w[1]));
        assert!(s.iter().all(|&x| (x as usize) < 1000));
        // k > n clamps.
        let s = sample_without_replacement(&mut rng, 5, 10);
        assert_eq!(s, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn reservoir_sample_size_and_uniformity() {
        let mut rng = seeded(4);
        let s = reservoir_sample(&mut rng, 10_000, 100);
        assert_eq!(s.len(), 100);
        assert!(s.windows(2).all(|w| w[0] < w[1]));
        // Short streams come back whole.
        assert_eq!(reservoir_sample(&mut rng, 3, 10), vec![0, 1, 2]);
        assert!(reservoir_sample(&mut rng, 10, 0).is_empty());
        // Inclusion probability ≈ k/n for an arbitrary id.
        let mut hits = 0;
        for trial in 0..2_000 {
            let mut r = seeded(1_000 + trial);
            if reservoir_sample_iter(&mut r, 0..200u32, 20).contains(&137) {
                hits += 1;
            }
        }
        let p = f64::from(hits) / 2_000.0;
        assert!((p - 0.1).abs() < 0.03, "inclusion p {p}");
    }
}
