//! SplitMix64: a tiny, fast 64-bit generator used for seed expansion.
//!
//! SplitMix64 (Steele, Lea & Flood, OOPSLA 2014; public-domain reference
//! by Sebastiano Vigna) is an equidistributed permutation of the 64-bit
//! integers driven by a Weyl sequence. It is the generator the xoshiro
//! authors recommend for initializing xoshiro state from a single word:
//! consecutive outputs are statistically independent even for adjacent
//! seeds, and no seed can produce an all-zero xoshiro state.

use crate::traits::Rng;

/// The SplitMix64 increment (the golden-ratio Weyl constant).
const GOLDEN_GAMMA: u64 = 0x9e37_79b9_7f4a_7c15;

/// SplitMix64 generator state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator whose first output mixes `seed + gamma`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Advances the Weyl sequence and mixes out one 64-bit value.
    #[inline]
    #[allow(clippy::should_implement_trait)] // established generator idiom, not an Iterator
    pub fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        mix(self.state)
    }
}

/// The stateless SplitMix64 output function (variant "mix13").
///
/// Useful on its own to derive independent sub-seeds from a base seed and
/// an index without constructing a generator:
/// `mix(base ^ (i as u64).wrapping_mul(GAMMA))`.
#[inline]
#[must_use]
pub fn mix(z: u64) -> u64 {
    let z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    let z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Derives the `index`-th decorrelated sub-seed of `base`.
///
/// Used by the property-test harness to give every test case its own
/// reproducible seed, and by callers that fan one user-facing seed out to
/// several independent streams (dataset vs. query vs. sample seeds).
#[inline]
#[must_use]
pub fn derive_seed(base: u64, index: u64) -> u64 {
    mix(base ^ index.wrapping_mul(GOLDEN_GAMMA).wrapping_add(GOLDEN_GAMMA))
}

impl Rng for SplitMix64 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vectors() {
        // Reference values from Vigna's public-domain splitmix64.c with
        // x = 0: the first three outputs.
        let mut sm = SplitMix64::new(0);
        assert_eq!(sm.next(), 0xe220_a839_7b1d_cdaf);
        assert_eq!(sm.next(), 0x6e78_9e6a_a1b9_65f4);
        assert_eq!(sm.next(), 0x06c4_5d18_8009_454f);
    }

    #[test]
    fn derive_seed_decorrelates_indices() {
        let a = derive_seed(42, 0);
        let b = derive_seed(42, 1);
        let c = derive_seed(43, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        // Stable across calls.
        assert_eq!(a, derive_seed(42, 0));
    }
}
