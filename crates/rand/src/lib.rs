//! # hdidx-rand
//!
//! Self-contained deterministic randomness for the `hdidx` workspace:
//! a xoshiro256++ generator seeded through SplitMix64, a small [`Rng`]
//! trait, and the statistical primitives the paper's pipeline needs
//! (Box–Muller Gaussians, Bernoulli scan sampling, reservoir sampling,
//! Floyd's sampling without replacement).
//!
//! The crate has **zero external dependencies** by design: the paper's
//! contribution rests on *reproducible* sampling, so the workspace owns
//! its randomness end to end instead of tracking an external crate whose
//! streams may shift between versions.
//!
//! ## Stream stability guarantee
//!
//! The bit streams produced by [`seeded`], [`Xoshiro256pp`] and
//! [`SplitMix64`] are part of the public contract of this crate: a given
//! seed must produce the same `u64`/`f64`/`f32` sequence on every
//! platform and in every future version. The golden-vector tests in
//! `tests/determinism.rs` pin the streams; any change that breaks them is
//! a breaking API change, not a patch.

pub mod splitmix;
pub mod stats;
pub mod traits;
pub mod xoshiro;

pub use splitmix::{derive_seed, SplitMix64};
pub use stats::{
    bernoulli_sample, reservoir_sample, reservoir_sample_iter, sample_without_replacement,
    standard_normal,
};
pub use traits::{Rng, Sample, SampleRange};
pub use xoshiro::Xoshiro256pp;

/// Creates the workspace's default deterministic RNG from a 64-bit seed.
///
/// This is the single entry point every crate in the workspace uses; the
/// returned generator is a [`Xoshiro256pp`] whose 256-bit state is expanded
/// from `seed` with SplitMix64 (the seeding procedure recommended by the
/// xoshiro authors, which also guarantees a non-zero state).
#[must_use]
pub fn seeded(seed: u64) -> Xoshiro256pp {
    Xoshiro256pp::seed_from_u64(seed)
}
