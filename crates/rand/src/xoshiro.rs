//! xoshiro256++: the workspace's general-purpose generator.
//!
//! xoshiro256++ 1.0 (Blackman & Vigna, "Scrambled linear pseudorandom
//! number generators", TOMS 2021; public-domain reference implementation)
//! has a 256-bit state, period 2^256 − 1, passes BigCrush/PractRand, and
//! needs only shifts, rotations and xors — it vectorizes well and is far
//! faster than the ChaCha-based generator it replaces here, which matters
//! because dataset generation draws hundreds of millions of variates in
//! the large experiments.

use crate::splitmix::SplitMix64;
use crate::traits::Rng;

/// xoshiro256++ generator state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Builds a generator from raw state words.
    ///
    /// The state must not be all zero (the all-zero state is the one fixed
    /// point of the underlying linear engine and would emit only zeros);
    /// an all-zero input is remapped through SplitMix64 instead of
    /// panicking so the constructor is total.
    #[must_use]
    pub fn from_state(s: [u64; 4]) -> Self {
        if s == [0; 4] {
            return Self::seed_from_u64(0);
        }
        Self { s }
    }

    /// Expands a 64-bit seed into the 256-bit state with SplitMix64.
    ///
    /// This is the seeding procedure recommended by the xoshiro authors:
    /// it decorrelates nearby seeds and can never produce the forbidden
    /// all-zero state (SplitMix64 is a bijection on 64-bit words, so four
    /// consecutive outputs are zero only with probability 2^-256 — and the
    /// constructor re-checks anyway).
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next(), sm.next(), sm.next(), sm.next()];
        if s == [0; 4] {
            // Unreachable in practice; keep the engine total regardless.
            return Self { s: [1, 2, 3, 4] };
        }
        Self { s }
    }

    /// Advances the engine one step and returns the scrambled output.
    #[inline]
    #[allow(clippy::should_implement_trait)] // established generator idiom, not an Iterator
    pub fn next(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// The 2^128-step jump polynomial: advances this generator as if
    /// `next` had been called 2^128 times. Splitting one seed into up to
    /// 2^128 non-overlapping parallel streams (one `jump` per worker) is
    /// how future multi-threaded dataset generation stays deterministic.
    pub fn jump(&mut self) {
        const JUMP: [u64; 4] = [
            0x180e_c6d3_3cfd_0aba,
            0xd5a6_1266_f0c9_392c,
            0xa958_2618_e03f_c9aa,
            0x39ab_dc45_29b1_661c,
        ];
        let mut acc = [0u64; 4];
        for word in JUMP {
            for bit in 0..64 {
                if word & (1u64 << bit) != 0 {
                    acc[0] ^= self.s[0];
                    acc[1] ^= self.s[1];
                    acc[2] ^= self.s[2];
                    acc[3] ^= self.s[3];
                }
                self.next();
            }
        }
        self.s = acc;
    }
}

impl Rng for Xoshiro256pp {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::Rng;

    #[test]
    fn matches_reference_vector_for_unit_state() {
        // First output for state [1, 2, 3, 4] per the reference C code:
        // rotl(s0 + s3, 23) + s0 = rotl(5, 23) + 1 = (5 << 23) + 1.
        let mut rng = Xoshiro256pp::from_state([1, 2, 3, 4]);
        assert_eq!(rng.next(), 41_943_041);
        assert_eq!(rng.next(), 58_720_359);
    }

    #[test]
    fn all_zero_state_is_remapped() {
        let mut a = Xoshiro256pp::from_state([0; 4]);
        let mut b = Xoshiro256pp::seed_from_u64(0);
        for _ in 0..8 {
            let x = a.next();
            assert_eq!(x, b.next());
            assert_ne!(x, 0, "degenerate engine");
        }
    }

    #[test]
    fn jump_leaves_disjoint_prefixes() {
        let mut a = Xoshiro256pp::seed_from_u64(9);
        let mut b = a.clone();
        b.jump();
        let pre: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let post: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        assert_ne!(pre, post);
    }

    #[test]
    fn floats_are_in_unit_interval() {
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        for _ in 0..10_000 {
            let x = rng.gen_f64();
            assert!((0.0..1.0).contains(&x), "{x}");
            let y = rng.gen_f32();
            assert!((0.0..1.0).contains(&y), "{y}");
        }
    }
}
