//! The [`Rng`] trait and the uniform-sampling machinery behind
//! `gen`, `gen_range` and `fill_shuffle`.
//!
//! The trait mirrors the subset of the `rand` crate API the workspace
//! actually uses, so the migration off the external crate is a one-line
//! import change at every call site — but the implementations (53-bit
//! float construction, Lemire's unbiased bounded sampling, Fisher–Yates)
//! are self-contained and stream-stable.

use std::ops::{Range, RangeInclusive};

/// A deterministic source of 64-bit words plus derived conveniences.
///
/// Only [`next_u64`](Rng::next_u64) is required; everything else is
/// defined in terms of it, so every implementor produces the same derived
/// streams from the same word stream. That property is load-bearing: the
/// workspace's determinism tests pin derived values (floats, ranges,
/// shuffles), not just raw words.
pub trait Rng {
    /// Returns the next 64 pseudo-random bits.
    fn next_u64(&mut self) -> u64;

    /// Draws a uniform value of type `T` (floats in `[0, 1)`, integers
    /// over their full range, `bool` as a fair coin).
    #[inline]
    fn gen<T: Sample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn gen_f64(&mut self) -> f64 {
        // Take the top 53 bits: the multiplier is exactly 2^-53, so the
        // result is an equidistant grid in [0, 1) and never rounds to 1.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Draws a uniform `f32` in `[0, 1)` with 24 bits of precision.
    #[inline]
    fn gen_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]` (NaN included) — a probability
    /// outside the unit interval is always a caller bug.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} not in [0, 1]");
        self.gen_f64() < p
    }

    /// Draws a uniform value from `range` (`a..b` or `a..=b` for the
    /// integer types, `a..b` for floats).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Shuffles `slice` in place (Fisher–Yates, back to front).
    #[inline]
    fn fill_shuffle<T>(&mut self, slice: &mut [T])
    where
        Self: Sized,
    {
        for i in (1..slice.len()).rev() {
            let j = u64_below(self, i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Draws a uniform integer in `[0, bound)` without modulo bias.
///
/// Lemire's multiply-shift method (Lemire, "Fast random integer
/// generation in an interval", TOMS 2019): one 64×64→128 multiply plus a
/// rare rejection loop, strictly unbiased for every bound.
#[inline]
pub(crate) fn u64_below<R: Rng + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let mut m = u128::from(rng.next_u64()) * u128::from(bound);
    let mut low = m as u64;
    if low < bound {
        // Reject the (tiny) biased fringe: 2^64 mod bound values.
        let threshold = bound.wrapping_neg() % bound;
        while low < threshold {
            m = u128::from(rng.next_u64()) * u128::from(bound);
            low = m as u64;
        }
    }
    (m >> 64) as u64
}

/// Types that can be drawn uniformly by [`Rng::gen`].
pub trait Sample: Sized {
    /// Draws one value from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),* $(,)?) => {$(
        impl Sample for $t {
            #[inline]
            fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Sample for f64 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.gen_f64()
    }
}

impl Sample for f32 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.gen_f32()
    }
}

impl Sample for bool {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // Use the top bit; low bits of weaker engines are the weakest.
        rng.next_u64() >> 63 == 1
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange {
    /// The element type of the range.
    type Output;
    /// Draws one value uniformly from `self`.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_range_uint {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(u64_below(rng, span) as $t)
            }
        }

        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full 64-bit domain (only reachable for u64/usize-64).
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(u64_below(rng, span) as $t)
            }
        }
    )*};
}

impl_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_range_sint {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add(u64_below(rng, span) as $t)
            }
        }

        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i64).wrapping_sub(start as i64) as u64;
                let span = span.wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(u64_below(rng, span) as $t)
            }
        }
    )*};
}

impl_range_sint!(i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty => $gen:ident),* $(,)?) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(
                    self.start < self.end && (self.end - self.start).is_finite(),
                    "gen_range: empty or non-finite float range"
                );
                self.start + (self.end - self.start) * rng.$gen()
            }
        }
    )*};
}

impl_range_float!(f64 => gen_f64, f32 => gen_f32);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seeded;

    #[test]
    fn gen_range_stays_in_bounds_and_hits_all_values() {
        let mut rng = seeded(11);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
        for _ in 0..1_000 {
            let v = rng.gen_range(5..=9u32);
            assert!((5..=9).contains(&v));
            let f = rng.gen_range(-2.0..3.0f64);
            assert!((-2.0..3.0).contains(&f));
            let i = rng.gen_range(-4..4i32);
            assert!((-4..4).contains(&i));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = seeded(0);
        let _ = rng.gen_range(3..3usize);
    }

    #[test]
    fn u64_below_is_roughly_uniform() {
        let mut rng = seeded(17);
        let mut counts = [0u32; 10];
        let draws = 100_000;
        for _ in 0..draws {
            counts[u64_below(&mut rng, 10) as usize] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let p = f64::from(c) / f64::from(draws);
            assert!((p - 0.1).abs() < 0.01, "bucket {i}: {p}");
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = seeded(23);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    #[should_panic(expected = "not in [0, 1]")]
    fn gen_bool_rejects_nan() {
        let mut rng = seeded(0);
        let _ = rng.gen_bool(f64::NAN);
    }

    #[test]
    fn fill_shuffle_is_a_permutation() {
        let mut rng = seeded(31);
        let mut v: Vec<u32> = (0..100).collect();
        rng.fill_shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "astronomically unlikely");
    }
}
