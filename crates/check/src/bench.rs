//! A small micro-benchmark runner replacing `criterion` for this
//! workspace: warmup, adaptive batched timing, median/p95/min/mean and
//! throughput, and machine-readable JSON-lines output for trajectory
//! tracking across PRs (`BENCH_<suite>.json`).
//!
//! Bench targets stay `harness = false` binaries:
//!
//! ```no_run
//! use hdidx_check::bench::{black_box, BenchSuite};
//!
//! fn main() {
//!     let mut suite = BenchSuite::new("kernels");
//!     let xs: Vec<f64> = (0..1024).map(f64::from).collect();
//!     suite.bench("sum/1024", || black_box(xs.iter().sum::<f64>()));
//!     suite.finish();
//! }
//! ```
//!
//! Environment knobs (all optional):
//!
//! * `HDIDX_BENCH_SAMPLES`   — timed samples per benchmark (default 25).
//! * `HDIDX_BENCH_WARMUP_MS` — warmup wall time per benchmark (default 150).
//! * `HDIDX_BENCH_TARGET_MS` — wall time one sample aims for (default 2).
//! * `HDIDX_BENCH_OUT`       — directory for `BENCH_<suite>.json`
//!   (default: current directory).
//! * A non-flag CLI argument filters benchmarks by substring, mirroring
//!   `cargo bench -- <filter>`.

pub use std::hint::black_box;

use std::io::Write as _;
use std::time::Instant;

/// Timing policy for one benchmark.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Number of timed samples to record.
    pub samples: u32,
    /// Wall-clock warmup budget before sampling, in milliseconds.
    pub warmup_ms: u64,
    /// Wall-clock time one sample should take, in milliseconds. The
    /// runner batches enough iterations per sample to reach this, so
    /// nanosecond-scale kernels are not swamped by timer overhead.
    pub target_sample_ms: f64,
}

impl Default for BenchConfig {
    fn default() -> Self {
        let mut cfg = Self {
            samples: 25,
            warmup_ms: 150,
            target_sample_ms: 2.0,
        };
        if let Ok(s) = std::env::var("HDIDX_BENCH_SAMPLES") {
            cfg.samples = s.parse().expect("HDIDX_BENCH_SAMPLES must be a u32");
        }
        if let Ok(s) = std::env::var("HDIDX_BENCH_WARMUP_MS") {
            cfg.warmup_ms = s.parse().expect("HDIDX_BENCH_WARMUP_MS must be a u64");
        }
        if let Ok(s) = std::env::var("HDIDX_BENCH_TARGET_MS") {
            cfg.target_sample_ms = s.parse().expect("HDIDX_BENCH_TARGET_MS must be an f64");
        }
        cfg
    }
}

/// Summary statistics of one benchmark, in nanoseconds per iteration.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark name (`group/param` by convention).
    pub name: String,
    /// Median of the per-iteration sample times.
    pub median_ns: f64,
    /// 95th percentile of the per-iteration sample times.
    pub p95_ns: f64,
    /// Fastest sample.
    pub min_ns: f64,
    /// Mean of the samples.
    pub mean_ns: f64,
    /// Iterations per second implied by the median.
    pub throughput_per_s: f64,
    /// Number of recorded samples.
    pub samples: u32,
    /// Iterations batched into each sample.
    pub iters_per_sample: u64,
}

/// Collects benchmarks, prints a human-readable summary and emits one
/// JSON object per benchmark into `BENCH_<suite>.json`.
pub struct BenchSuite {
    suite: String,
    config: BenchConfig,
    filter: Option<String>,
    isa: Option<String>,
    results: Vec<BenchResult>,
}

impl BenchSuite {
    /// Creates a suite named `suite`, reading the filter from the CLI
    /// arguments (flags such as `--bench`, which cargo passes to
    /// `harness = false` targets, are ignored).
    #[must_use]
    pub fn new(suite: &str) -> Self {
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'))
            .filter(|a| !a.is_empty());
        Self {
            suite: suite.to_string(),
            config: BenchConfig::default(),
            filter,
            isa: None,
            results: Vec::new(),
        }
    }

    /// Records the active SIMD ISA (e.g. `avx2 (detected)`); every JSON
    /// row of the suite then carries it in an `"isa"` field so
    /// perf-trajectory artifacts are comparable across machines. The
    /// `hdidx-check` crate deliberately does not depend on `hdidx-core`,
    /// so bench targets pass `hdidx_core::simd::describe()` in here.
    pub fn set_isa(&mut self, isa: &str) {
        self.isa = Some(isa.to_string());
    }

    /// Median of the recorded benchmark named `name`, in nanoseconds per
    /// iteration — lets a bench target assert relations between its own
    /// rows (e.g. batch throughput must not regress below single-query).
    #[must_use]
    pub fn median_ns(&self, name: &str) -> Option<f64> {
        self.results
            .iter()
            .find(|r| r.name == name)
            .map(|r| r.median_ns)
    }

    /// Fastest sample of the recorded benchmark named `name`, in
    /// nanoseconds per iteration. For cross-row assertions the min is the
    /// steadier statistic: it reflects what the code can do, where the
    /// median also carries scheduler noise.
    #[must_use]
    pub fn min_ns(&self, name: &str) -> Option<f64> {
        self.results
            .iter()
            .find(|r| r.name == name)
            .map(|r| r.min_ns)
    }

    /// Replaces the default timing policy for subsequently added
    /// benchmarks.
    pub fn set_config(&mut self, config: BenchConfig) {
        self.config = config;
    }

    /// The CLI substring filter, if one was given (`cargo bench --
    /// <filter>`). Bench targets with expensive per-group setup can check
    /// this up front and skip building inputs no benchmark will consume —
    /// also how dedicated smoke groups (e.g. `soup_smoke` in the `kernels`
    /// target) are selected from CI.
    #[must_use]
    pub fn filter(&self) -> Option<&str> {
        self.filter.as_deref()
    }

    /// Times `routine` and records the result under `name`.
    pub fn bench<T, F: FnMut() -> T>(&mut self, name: &str, mut routine: F) {
        if self.skipped(name) {
            return;
        }
        let cfg = self.config.clone();
        // Estimate the per-iteration cost to size the sample batches.
        let once = time_batch(&mut routine, 1);
        let per_iter_est = once.max(1.0);
        let iters_per_sample =
            ((cfg.target_sample_ms * 1e6 / per_iter_est).round() as u64).clamp(1, 100_000_000);

        // Warmup: run for the wall-time budget (at least one batch).
        let warmup_deadline = Instant::now();
        loop {
            let _ = time_batch(&mut routine, iters_per_sample.min(1_000));
            if warmup_deadline.elapsed().as_millis() as u64 >= cfg.warmup_ms {
                break;
            }
        }

        let mut samples_ns = Vec::with_capacity(cfg.samples as usize);
        for _ in 0..cfg.samples {
            samples_ns.push(time_batch(&mut routine, iters_per_sample) / iters_per_sample as f64);
        }
        self.record(name, samples_ns, iters_per_sample);
    }

    /// Times `routine(input)` where each iteration consumes a fresh value
    /// from `setup`; setup time is excluded from the measurement. Use for
    /// routines that mutate their input (e.g. in-place partitioning).
    ///
    /// Each sample is a single timed call, so this suits routines costing
    /// at least a few microseconds.
    pub fn bench_with_setup<S, T, R, F>(&mut self, name: &str, mut setup: S, mut routine: F)
    where
        S: FnMut() -> T,
        F: FnMut(T) -> R,
    {
        if self.skipped(name) {
            return;
        }
        let cfg = self.config.clone();
        let warmup_deadline = Instant::now();
        loop {
            let input = setup();
            let _ = black_box(routine(black_box(input)));
            if warmup_deadline.elapsed().as_millis() as u64 >= cfg.warmup_ms {
                break;
            }
        }
        let mut samples_ns = Vec::with_capacity(cfg.samples as usize);
        for _ in 0..cfg.samples {
            let input = setup();
            let start = Instant::now();
            let _ = black_box(routine(black_box(input)));
            samples_ns.push(start.elapsed().as_nanos() as f64);
        }
        self.record(name, samples_ns, 1);
    }

    fn skipped(&self, name: &str) -> bool {
        self.filter.as_deref().is_some_and(|f| !name.contains(f))
    }

    fn record(&mut self, name: &str, mut samples_ns: Vec<f64>, iters_per_sample: u64) {
        samples_ns.sort_by(|a, b| a.total_cmp(b));
        let n = samples_ns.len();
        let percentile = |q: f64| {
            crate::stats::interpolated(&samples_ns, q)
                .expect("bench samples are non-empty wall-clock times")
        };
        let median = percentile(0.50);
        let result = BenchResult {
            name: name.to_string(),
            median_ns: median,
            p95_ns: percentile(0.95),
            min_ns: samples_ns[0],
            mean_ns: samples_ns.iter().sum::<f64>() / n as f64,
            throughput_per_s: if median > 0.0 {
                1e9 / median
            } else {
                f64::INFINITY
            },
            samples: n as u32,
            iters_per_sample,
        };
        println!(
            "{:<44} median {:>12}  p95 {:>12}  min {:>12}  ({} samples × {} iters)",
            result.name,
            fmt_ns(result.median_ns),
            fmt_ns(result.p95_ns),
            fmt_ns(result.min_ns),
            result.samples,
            result.iters_per_sample,
        );
        self.results.push(result);
    }

    /// Prints the footer and writes `BENCH_<suite>.json` (one JSON object
    /// per line, append-friendly for trajectory tracking).
    ///
    /// # Panics
    ///
    /// Panics if the output file cannot be written — a silent bench run
    /// that records nothing is worse than a loud one.
    pub fn finish(self) {
        let dir = std::env::var("HDIDX_BENCH_OUT").unwrap_or_else(|_| ".".to_string());
        let path = std::path::Path::new(&dir).join(format!("BENCH_{}.json", self.suite));
        let isa_field = self
            .isa
            .as_deref()
            .map(|isa| format!(",\"isa\":\"{}\"", json_escape(isa)))
            .unwrap_or_default();
        let mut out = String::new();
        for r in &self.results {
            out.push_str(&format!(
                "{{\"suite\":\"{}\",\"name\":\"{}\",\"median_ns\":{:.1},\"p95_ns\":{:.1},\
                 \"min_ns\":{:.1},\"mean_ns\":{:.1},\"throughput_per_s\":{:.3},\
                 \"samples\":{},\"iters_per_sample\":{}{}}}\n",
                json_escape(&self.suite),
                json_escape(&r.name),
                r.median_ns,
                r.p95_ns,
                r.min_ns,
                r.mean_ns,
                r.throughput_per_s,
                r.samples,
                r.iters_per_sample,
                isa_field,
            ));
        }
        let mut file = std::fs::File::create(&path)
            .unwrap_or_else(|e| panic!("cannot create {}: {e}", path.display()));
        file.write_all(out.as_bytes())
            .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
        println!(
            "[hdidx-check] {} benchmark(s) → {}",
            self.results.len(),
            path.display()
        );
    }
}

/// Runs `routine` `iters` times and returns the elapsed time in ns.
fn time_batch<T, F: FnMut() -> T>(routine: &mut F, iters: u64) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        black_box(routine());
    }
    start.elapsed().as_nanos() as f64
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            '\t' => "\\t".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("plain/name_0"), "plain/name_0");
    }

    #[test]
    fn bench_produces_sane_stats_and_json() {
        let dir = std::env::temp_dir().join("hdidx_check_bench_test");
        std::fs::create_dir_all(&dir).unwrap();
        std::env::set_var("HDIDX_BENCH_OUT", &dir);
        let mut suite = BenchSuite::new("selftest");
        suite.set_config(BenchConfig {
            samples: 10,
            warmup_ms: 1,
            target_sample_ms: 0.05,
        });
        suite.set_isa("testisa (forced)");
        let xs: Vec<f64> = (0..512).map(f64::from).collect();
        suite.bench("sum/512", || black_box(xs.iter().sum::<f64>()));
        suite.bench_with_setup(
            "sort/512",
            || xs.clone(),
            |mut v| {
                v.sort_by(|a, b| a.total_cmp(b));
                v
            },
        );
        let medians: Vec<f64> = suite.results.iter().map(|r| r.median_ns).collect();
        assert_eq!(suite.results.len(), 2);
        assert!(medians.iter().all(|&m| m > 0.0 && m.is_finite()));
        for r in &suite.results {
            assert!(r.min_ns <= r.median_ns && r.median_ns <= r.p95_ns + 1e-9);
        }
        assert_eq!(suite.median_ns("sum/512"), Some(medians[0]));
        assert_eq!(suite.median_ns("no/such/row"), None);
        suite.finish();
        let written = std::fs::read_to_string(dir.join("BENCH_selftest.json")).unwrap();
        assert_eq!(written.lines().count(), 2);
        assert!(written.contains("\"median_ns\""), "{written}");
        assert!(
            written
                .lines()
                .all(|l| l.contains("\"isa\":\"testisa (forced)\"")),
            "every row must carry the isa field: {written}"
        );
        std::env::remove_var("HDIDX_BENCH_OUT");
    }
}
