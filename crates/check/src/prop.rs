//! Seeded property testing: generate cases from a deterministic PRNG,
//! report the failing case's seed, and shrink the failing input.
//!
//! The harness replaces `proptest` for this workspace with three ideas:
//!
//! 1. **Cases are seeds.** Every case draws its input from a
//!    [`Xoshiro256pp`] seeded with a value derived from the run seed and
//!    the case index. A failure report prints that case seed, and
//!    `HDIDX_CHECK_REPLAY=<seed>` re-runs exactly that input.
//! 2. **Properties return a [`Verdict`]**, not a panic: `Pass`,
//!    `Discard` (the input misses a precondition — draw another) or
//!    `Fail(message)`. Panics inside a property are caught and treated
//!    as failures, so plain `assert!`/`unwrap` still work.
//! 3. **Failing inputs shrink** via [`Shrink`](crate::shrink::Shrink):
//!    greedy descent to a fixed point, bounded by
//!    [`Config::max_shrink_iters`].
//!
//! ```
//! use hdidx_check::{check, Config, Verdict};
//! use hdidx_rand::Rng;
//!
//! check(
//!     "sum is commutative",
//!     &Config::with_cases(64),
//!     |rng| (rng.gen::<u32>() >> 1, rng.gen::<u32>() >> 1),
//!     |&(a, b)| {
//!         hdidx_check::prop_assert_eq!(a + b, b + a);
//!         Verdict::Pass
//!     },
//! );
//! ```

use crate::shrink::Shrink;
use hdidx_rand::{splitmix, Xoshiro256pp};
use std::fmt::Debug;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Outcome of evaluating a property on one input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// The property holds for this input.
    Pass,
    /// The input misses a precondition; it does not count as a case.
    Discard,
    /// The property is violated; the message explains how.
    Fail(String),
}

/// Property-run configuration.
///
/// Environment overrides (read by [`Config::from_env`], which all
/// constructors apply):
///
/// * `HDIDX_CHECK_CASES`  — override the number of cases per property.
/// * `HDIDX_CHECK_SEED`   — override the base seed of the run.
/// * `HDIDX_CHECK_REPLAY` — run exactly one case from this case seed
///   (the value printed in a failure report), skipping generation of all
///   other cases.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of passing cases required.
    pub cases: u32,
    /// Base seed; case `i` uses a sub-seed derived from it.
    pub seed: u64,
    /// Upper bound on property evaluations spent shrinking a failure.
    pub max_shrink_iters: u32,
    /// Give up with an error after `cases * max_discard_ratio` discards.
    pub max_discard_ratio: u32,
    /// When set, replay exactly this case seed and nothing else.
    pub replay: Option<u64>,
}

impl Default for Config {
    fn default() -> Self {
        Self::with_cases(256)
    }
}

impl Config {
    /// A config running `cases` cases from the default seed, with
    /// environment overrides applied.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self {
            cases,
            seed: 0x5eed_001d_1d05_ca1e ^ 0xa076_1d64_78bd_642f,
            max_shrink_iters: 512,
            max_discard_ratio: 16,
            replay: None,
        }
        .from_env()
    }

    /// Applies the `HDIDX_CHECK_*` environment overrides.
    #[must_use]
    pub fn from_env(mut self) -> Self {
        if let Some(c) = env_u64("HDIDX_CHECK_CASES") {
            self.cases = c as u32;
        }
        if let Some(s) = env_u64("HDIDX_CHECK_SEED") {
            self.seed = s;
        }
        self.replay = env_u64("HDIDX_CHECK_REPLAY").or(self.replay);
        self
    }
}

fn env_u64(key: &str) -> Option<u64> {
    let raw = std::env::var(key).ok()?;
    let parsed = if let Some(hex) = raw.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
    } else {
        raw.parse()
    };
    match parsed {
        Ok(v) => Some(v),
        Err(_) => panic!("[hdidx-check] cannot parse {key}={raw} as u64"),
    }
}

/// Evaluates the property, converting panics into failures.
fn eval<T, P>(prop: &P, input: &T) -> Verdict
where
    P: Fn(&T) -> Verdict,
{
    match catch_unwind(AssertUnwindSafe(|| prop(input))) {
        Ok(v) => v,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(ToString::to_string)
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "property panicked".to_string());
            Verdict::Fail(format!("panic: {msg}"))
        }
    }
}

/// Checks `prop` against `cfg.cases` inputs drawn by `gen`.
///
/// Panics with a structured report (test name, case index, case seed,
/// original and shrunken inputs, replay instructions) on the first
/// failing case, after shrinking it.
///
/// # Panics
///
/// On property failure, or when the discard budget is exhausted.
pub fn check<T, G, P>(name: &str, cfg: &Config, gen: G, prop: P)
where
    T: Clone + Debug + Shrink,
    G: Fn(&mut Xoshiro256pp) -> T,
    P: Fn(&T) -> Verdict,
{
    if let Some(case_seed) = cfg.replay {
        let input = gen(&mut Xoshiro256pp::seed_from_u64(case_seed));
        match eval(&prop, &input) {
            Verdict::Fail(msg) => fail_report(name, 0, case_seed, &input, &input, 0, &msg),
            Verdict::Discard => {
                eprintln!("[hdidx-check] {name}: replayed case {case_seed:#018x} was discarded");
            }
            Verdict::Pass => {}
        }
        return;
    }

    let mut passed: u32 = 0;
    let mut discarded: u64 = 0;
    let mut attempt: u64 = 0;
    while passed < cfg.cases {
        let case_seed = splitmix::derive_seed(cfg.seed, attempt);
        attempt += 1;
        let input = gen(&mut Xoshiro256pp::seed_from_u64(case_seed));
        match eval(&prop, &input) {
            Verdict::Pass => passed += 1,
            Verdict::Discard => {
                discarded += 1;
                let budget = u64::from(cfg.cases) * u64::from(cfg.max_discard_ratio);
                assert!(
                    discarded <= budget,
                    "[hdidx-check] property '{name}': {discarded} discards for {passed} passes \
                     (budget {budget}); loosen the generator or the preconditions"
                );
            }
            Verdict::Fail(msg) => {
                let (minimal, min_msg, steps) = shrink_failure(cfg, &prop, input.clone(), &msg);
                fail_report(
                    name,
                    attempt - 1,
                    case_seed,
                    &input,
                    &minimal,
                    steps,
                    &min_msg,
                );
            }
        }
    }
}

/// Greedy shrink: repeatedly move to the first still-failing candidate.
fn shrink_failure<T, P>(cfg: &Config, prop: &P, input: T, msg: &str) -> (T, String, u32)
where
    T: Clone + Debug + Shrink,
    P: Fn(&T) -> Verdict,
{
    let mut best = input;
    let mut best_msg = msg.to_string();
    let mut iters: u32 = 0;
    'descend: loop {
        for cand in best.shrink() {
            if iters >= cfg.max_shrink_iters {
                break 'descend;
            }
            iters += 1;
            if let Verdict::Fail(m) = eval(prop, &cand) {
                best = cand;
                best_msg = m;
                continue 'descend;
            }
        }
        break;
    }
    (best, best_msg, iters)
}

fn fail_report<T: Debug>(
    name: &str,
    case: u64,
    case_seed: u64,
    original: &T,
    minimal: &T,
    shrink_steps: u32,
    msg: &str,
) -> ! {
    panic!(
        "\n[hdidx-check] property '{name}' FAILED\n\
         \x20 case        : #{case} (seed {case_seed:#018x})\n\
         \x20 error       : {msg}\n\
         \x20 original    : {original:?}\n\
         \x20 minimal     : {minimal:?}  ({shrink_steps} shrink evals)\n\
         \x20 replay with : HDIDX_CHECK_REPLAY={case_seed:#x} cargo test {name}\n"
    );
}

/// Asserts a condition inside a property, failing the case (not the
/// process) when it does not hold.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return $crate::Verdict::Fail(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return $crate::Verdict::Fail(format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a property, showing both sides on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return $crate::Verdict::Fail(format!(
                "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            ));
        }
    }};
}

/// Discards the current case when a precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return $crate::Verdict::Discard;
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdidx_rand::Rng;

    fn quiet() -> Config {
        // Bypass env overrides so the harness's own tests stay hermetic.
        Config {
            cases: 64,
            seed: 99,
            max_shrink_iters: 256,
            max_discard_ratio: 16,
            replay: None,
        }
    }

    #[test]
    fn passing_property_runs_all_cases() {
        let mut cfg = quiet();
        cfg.cases = 32;
        check(
            "u32 halves fit",
            &cfg,
            |rng| rng.gen::<u32>(),
            |&x| {
                prop_assert!(u64::from(x / 2) * 2 <= u64::from(x));
                Verdict::Pass
            },
        );
    }

    #[test]
    fn failing_property_shrinks_to_threshold() {
        let result = catch_unwind(|| {
            check(
                "fails at >= 100",
                &quiet(),
                |rng| rng.gen_range(0..1_000_000usize),
                |&x| {
                    prop_assert!(x < 100, "x = {x}");
                    Verdict::Pass
                },
            );
        });
        let msg = match result {
            Err(payload) => payload.downcast_ref::<String>().unwrap().clone(),
            Ok(()) => panic!("property should have failed"),
        };
        // Greedy scalar shrinking lands exactly on the boundary value.
        assert!(msg.contains("minimal     : 100"), "{msg}");
        assert!(msg.contains("HDIDX_CHECK_REPLAY="), "{msg}");
    }

    #[test]
    fn panics_are_reported_as_failures() {
        let result = catch_unwind(|| {
            check(
                "panics on big",
                &quiet(),
                |rng| rng.gen_range(0..100usize),
                |&x| {
                    assert!(x < 90, "boom {x}");
                    Verdict::Pass
                },
            );
        });
        assert!(result.is_err());
    }

    #[test]
    fn discards_do_not_count_as_cases() {
        let hits = std::cell::Cell::new(0u32);
        let cfg = quiet();
        check(
            "only evens",
            &cfg,
            |rng| rng.gen::<u32>(),
            |&x| {
                prop_assume!(x % 2 == 0);
                hits.set(hits.get() + 1);
                prop_assert!(x % 2 == 0);
                Verdict::Pass
            },
        );
        assert!(hits.get() >= cfg.cases);
    }

    #[test]
    #[should_panic(expected = "discards")]
    fn impossible_preconditions_exhaust_the_budget() {
        check(
            "never satisfiable",
            &quiet(),
            |rng| rng.gen::<u32>(),
            |_| Verdict::Discard,
        );
    }

    #[test]
    fn same_seed_same_cases() {
        let collect = || {
            let inputs = std::cell::RefCell::new(Vec::new());
            check(
                "trace",
                &quiet(),
                |rng| rng.gen::<u64>(),
                |&x| {
                    inputs.borrow_mut().push(x);
                    Verdict::Pass
                },
            );
            inputs.into_inner()
        };
        assert_eq!(collect(), collect());
    }
}
