//! # hdidx-check
//!
//! The workspace's owned correctness and measurement layer:
//!
//! * [`prop`] — a seeded property-testing harness (replaces `proptest`):
//!   deterministic case generation, configurable case counts, failing-seed
//!   reporting with `HDIDX_CHECK_REPLAY` replay, and greedy input
//!   shrinking via [`shrink::Shrink`].
//! * [`bench`] — a micro-benchmark runner (replaces `criterion`): warmup,
//!   adaptive batched sampling, median/p95/min/mean + throughput, and
//!   JSON-lines output (`BENCH_<suite>.json`) for cross-PR trajectory
//!   tracking.
//! * [`stats`] — shared percentile helpers over sorted samples
//!   (linear-interpolated for the bench artifacts, exact nearest-rank for
//!   tail-latency accounting), NaN-rejecting.
//!
//! Like `hdidx-rand`, this crate has **zero external dependencies**: the
//! repository's correctness claims and performance numbers must be
//! reproducible offline, from a cold checkout, on any machine with a Rust
//! toolchain.

pub mod bench;
pub mod prop;
pub mod shrink;
pub mod stats;

pub use bench::{black_box, BenchConfig, BenchResult, BenchSuite};
pub use prop::{check, Config, Verdict};
pub use shrink::Shrink;
