//! Shared sample statistics over **ascending-sorted** `f64` samples.
//!
//! Two percentile definitions coexist in the workspace and both live here
//! so no caller duplicates quantile code:
//!
//! * [`interpolated`] — linear interpolation between the two bracketing
//!   order statistics. This is what [`crate::bench::BenchSuite`] has always
//!   reported (`median_ns` / `p95_ns` in the committed `BENCH_*.json`
//!   baselines), so it stays the bench definition for artifact stability.
//! * [`nearest_rank`] — the exact nearest-rank percentile: the smallest
//!   sample `x` such that at least `q·n` samples are `<= x`. Every reported
//!   value is an actual observed sample, which is the right definition for
//!   tail-latency accounting (`hdidx-serve`'s `LatencyRecorder`): a p99
//!   that was never observed is not a latency anyone experienced.
//!
//! All helpers are **NaN-rejecting**: a sample set containing a NaN (or an
//! empty one, or a quantile outside `[0, 1]`) yields `None` instead of a
//! NaN-poisoned or arbitrary answer. Inputs must already be sorted
//! ascending (by `total_cmp`); this is debug-asserted, not re-sorted, so
//! the helpers stay allocation-free on hot reporting paths.

/// True when `samples` is free of NaNs and ascending under `total_cmp`.
#[must_use]
pub fn is_clean_sorted(samples: &[f64]) -> bool {
    !samples.iter().any(|x| x.is_nan()) && samples.windows(2).all(|w| w[0].total_cmp(&w[1]).is_le())
}

/// Exact nearest-rank percentile of an ascending-sorted slice: the
/// `ceil(q·n)`-th smallest sample (1-based), i.e. always an observed
/// value. `q = 0` selects the minimum, `q = 1` the maximum.
///
/// Returns `None` for an empty slice, a NaN-containing slice, or a
/// quantile outside `[0, 1]`.
#[must_use]
pub fn nearest_rank(sorted: &[f64], q: f64) -> Option<f64> {
    if sorted.is_empty() || !(0.0..=1.0).contains(&q) || sorted.iter().any(|x| x.is_nan()) {
        return None;
    }
    debug_assert!(is_clean_sorted(sorted), "input must be sorted ascending");
    let n = sorted.len();
    let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
    Some(sorted[rank - 1])
}

/// Nearest-rank median (see [`nearest_rank`]).
#[must_use]
pub fn p50(sorted: &[f64]) -> Option<f64> {
    nearest_rank(sorted, 0.50)
}

/// Nearest-rank 95th percentile (see [`nearest_rank`]).
#[must_use]
pub fn p95(sorted: &[f64]) -> Option<f64> {
    nearest_rank(sorted, 0.95)
}

/// Nearest-rank 99th percentile (see [`nearest_rank`]).
#[must_use]
pub fn p99(sorted: &[f64]) -> Option<f64> {
    nearest_rank(sorted, 0.99)
}

/// Linear-interpolated percentile of an ascending-sorted slice: the value
/// at fractional position `q·(n−1)`, interpolating between the bracketing
/// samples. The historical `BenchSuite` definition.
///
/// Returns `None` for an empty slice, a NaN-containing slice, or a
/// quantile outside `[0, 1]`.
#[must_use]
pub fn interpolated(sorted: &[f64], q: f64) -> Option<f64> {
    if sorted.is_empty() || !(0.0..=1.0).contains(&q) || sorted.iter().any(|x| x.is_nan()) {
        return None;
    }
    debug_assert!(is_clean_sorted(sorted), "input must be sorted ascending");
    if sorted.len() == 1 {
        return Some(sorted[0]);
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Some(sorted[lo] + (sorted[hi] - sorted[lo]) * frac)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_returns_observed_samples() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        // ceil(0.5 * 4) = 2 -> second sample.
        assert_eq!(nearest_rank(&xs, 0.50), Some(2.0));
        assert_eq!(nearest_rank(&xs, 0.0), Some(1.0));
        assert_eq!(nearest_rank(&xs, 1.0), Some(4.0));
        // Every result must be a member of the input.
        for q in [0.01, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99] {
            let v = nearest_rank(&xs, q).unwrap();
            assert!(xs.contains(&v), "q={q} gave non-sample {v}");
        }
        assert_eq!(nearest_rank(&[7.5], 0.99), Some(7.5));
    }

    #[test]
    fn nearest_rank_p99_of_100_is_the_99th_sample() {
        let xs: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(p50(&xs), Some(50.0));
        assert_eq!(p95(&xs), Some(95.0));
        assert_eq!(p99(&xs), Some(99.0));
        // One fewer sample shifts every rank down by the ceil.
        let xs: Vec<f64> = (1..=10).map(f64::from).collect();
        assert_eq!(p50(&xs), Some(5.0));
        assert_eq!(p95(&xs), Some(10.0));
        assert_eq!(p99(&xs), Some(10.0));
    }

    #[test]
    fn interpolated_matches_historical_bench_definition() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!((interpolated(&xs, 0.0).unwrap() - 1.0).abs() < 1e-12);
        assert!((interpolated(&xs, 1.0).unwrap() - 4.0).abs() < 1e-12);
        assert!((interpolated(&xs, 0.5).unwrap() - 2.5).abs() < 1e-12);
        assert!((interpolated(&[7.0], 0.95).unwrap() - 7.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_empty_nan_and_out_of_range() {
        assert_eq!(nearest_rank(&[], 0.5), None);
        assert_eq!(interpolated(&[], 0.5), None);
        let bad = [1.0, f64::NAN];
        assert_eq!(nearest_rank(&bad, 0.5), None);
        assert_eq!(interpolated(&bad, 0.5), None);
        assert_eq!(p50(&bad), None);
        let ok = [1.0, 2.0];
        assert_eq!(nearest_rank(&ok, -0.1), None);
        assert_eq!(nearest_rank(&ok, 1.1), None);
        assert_eq!(interpolated(&ok, 2.0), None);
    }

    #[test]
    fn clean_sorted_detects_disorder_and_nan() {
        assert!(is_clean_sorted(&[]));
        assert!(is_clean_sorted(&[1.0]));
        assert!(is_clean_sorted(&[1.0, 1.0, 2.0]));
        assert!(!is_clean_sorted(&[2.0, 1.0]));
        assert!(!is_clean_sorted(&[1.0, f64::NAN]));
    }
}
