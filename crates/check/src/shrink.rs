//! Input shrinking for failing property-test cases.
//!
//! The harness is minimal by design: a [`Shrink`] implementation proposes
//! a bounded list of strictly "smaller" candidates, and the runner
//! greedily walks to a fixed point (first candidate that still fails
//! wins, repeat). Scalars shrink toward zero, `Vec<f32>` shrinks by
//! halving and element removal, and tuples shrink one component at a
//! time — enough to turn a 600-point failing dataset spec into the
//! 2-point one you can actually debug.
//!
//! Shrunk candidates can fall outside the range the generator drew from
//! (e.g. `n in 2..300` shrinking to 0). Properties guard against that
//! with `prop_assume!`: a discarded candidate is simply not "still
//! failing", so the shrinker backs off instead of reporting an
//! out-of-domain minimum.

/// Types whose failing values can propose smaller variants of themselves.
pub trait Shrink: Sized {
    /// Returns a bounded list of candidates strictly simpler than `self`.
    /// An empty list means `self` is already minimal.
    fn shrink(&self) -> Vec<Self>;
}

macro_rules! impl_shrink_uint {
    ($($t:ty),* $(,)?) => {$(
        impl Shrink for $t {
            fn shrink(&self) -> Vec<Self> {
                let v = *self;
                if v == 0 {
                    return Vec::new();
                }
                let mut out = vec![0, v / 2, v - 1];
                out.dedup();
                out.retain(|&c| c != v);
                out
            }
        }
    )*};
}

impl_shrink_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_shrink_sint {
    ($($t:ty),* $(,)?) => {$(
        impl Shrink for $t {
            fn shrink(&self) -> Vec<Self> {
                let v = *self;
                if v == 0 {
                    return Vec::new();
                }
                let mut out = vec![0, v / 2, v - v.signum()];
                if v < 0 {
                    out.push(-v); // prefer the positive mirror if it fails too
                }
                out.dedup();
                out.retain(|&c| c != v);
                out
            }
        }
    )*};
}

impl_shrink_sint!(i8, i16, i32, i64, isize);

macro_rules! impl_shrink_float {
    ($($t:ty),* $(,)?) => {$(
        impl Shrink for $t {
            fn shrink(&self) -> Vec<Self> {
                let v = *self;
                if v == 0.0 || v.is_nan() {
                    return Vec::new();
                }
                let mut out = vec![0.0, v / 2.0, v.trunc()];
                if v < 0.0 {
                    out.push(-v);
                }
                out.retain(|&c| c != v && !c.is_nan());
                out.dedup();
                out
            }
        }
    )*};
}

impl_shrink_float!(f32, f64);

impl Shrink for bool {
    fn shrink(&self) -> Vec<Self> {
        if *self {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

impl<T: Shrink + Clone> Shrink for Vec<T> {
    fn shrink(&self) -> Vec<Self> {
        let mut out = Vec::new();
        let n = self.len();
        if n == 0 {
            return out;
        }
        // Structural shrinks first: halves, then single-element removals.
        if n > 1 {
            out.push(self[..n / 2].to_vec());
            out.push(self[n / 2..].to_vec());
        } else {
            out.push(Vec::new());
        }
        for i in 0..n.min(8) {
            let mut v = self.clone();
            v.remove(i);
            out.push(v);
        }
        // Element-wise shrinks on a bounded prefix.
        for i in 0..n.min(8) {
            for cand in self[i].shrink().into_iter().take(2) {
                let mut v = self.clone();
                v[i] = cand;
                out.push(v);
            }
        }
        out
    }
}

macro_rules! impl_shrink_tuple {
    ($(($($name:ident : $idx:tt),+)),* $(,)?) => {$(
        impl<$($name: Shrink + Clone),+> Shrink for ($($name,)+) {
            fn shrink(&self) -> Vec<Self> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink() {
                        let mut t = self.clone();
                        t.$idx = cand;
                        out.push(t);
                    }
                )+
                out
            }
        }
    )*};
}

impl_shrink_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_shrink_toward_zero_and_terminate() {
        let mut v = 1_000_000usize;
        let mut steps = 0;
        while let Some(&next) = v.shrink().first() {
            assert!(next < v);
            v = next;
            steps += 1;
            assert!(steps < 100, "non-terminating shrink");
        }
        assert_eq!(v, 0);
        assert!(0usize.shrink().is_empty());
        assert!(0.0f64.shrink().is_empty());
        assert!(f64::NAN.shrink().is_empty());
    }

    #[test]
    fn vec_shrink_produces_strictly_simpler_candidates() {
        let v: Vec<f32> = vec![3.5, -1.0, 8.0, 0.0];
        for cand in v.shrink() {
            assert!(
                cand.len() < v.len() || cand != v,
                "candidate equals input: {cand:?}"
            );
        }
        assert!(Vec::<f32>::new().shrink().is_empty());
    }

    #[test]
    fn tuple_shrink_varies_one_component() {
        let t = (4usize, 2.0f64);
        for (a, b) in t.shrink() {
            assert!(a != t.0 || b != t.1);
            assert!(a == t.0 || b == t.1, "both components changed");
        }
    }
}
