//! Karhunen–Loève transform (PCA rotation).
//!
//! Four of the paper's five datasets are "transformed using KLT" before
//! indexing: the data is rotated onto the eigenvectors of its covariance
//! matrix, ordered by decreasing eigenvalue, so that variance concentrates
//! in the leading dimensions (which is what makes dimension-prefix indexes,
//! Figure 14, sensible). This module provides that preprocessing for
//! library users bringing their own data, and lets the tests verify that
//! the synthetic analogs have KLT-invariant structure.
//!
//! The eigendecomposition is a cyclic Jacobi iteration — `O(d³)` per sweep,
//! fine for feature dimensionalities (the paper's largest is 617).

use hdidx_core::{Dataset, Error, Result};

/// Result of a KLT fit: eigenvalues (descending) and the corresponding
/// eigenvectors (row-major, one eigenvector per row).
#[derive(Debug, Clone)]
pub struct Klt {
    /// Input dimensionality.
    pub dim: usize,
    /// Eigenvalues of the covariance matrix, descending.
    pub eigenvalues: Vec<f64>,
    /// Eigenvectors, row `r` = the direction with the `r`-th largest
    /// variance (length `dim` each, orthonormal).
    pub components: Vec<f64>,
    /// Per-dimension mean of the fitted data.
    pub mean: Vec<f64>,
}

impl Klt {
    /// Fits the transform to `data` (covariance + Jacobi diagonalization).
    ///
    /// # Errors
    ///
    /// Rejects datasets with fewer than 2 points.
    pub fn fit(data: &Dataset) -> Result<Klt> {
        let n = data.len();
        let d = data.dim();
        if n < 2 {
            return Err(Error::EmptyInput("KLT needs at least 2 points"));
        }
        // Mean.
        let mut mean = vec![0.0f64; d];
        for i in 0..n {
            for (m, &x) in mean.iter_mut().zip(data.point(i)) {
                *m += f64::from(x);
            }
        }
        for m in &mut mean {
            *m /= n as f64;
        }
        // Covariance (upper triangle, then mirrored).
        let mut cov = vec![0.0f64; d * d];
        for i in 0..n {
            let p = data.point(i);
            for a in 0..d {
                let da = f64::from(p[a]) - mean[a];
                for b in a..d {
                    cov[a * d + b] += da * (f64::from(p[b]) - mean[b]);
                }
            }
        }
        let norm = 1.0 / (n as f64 - 1.0);
        for a in 0..d {
            for b in a..d {
                let v = cov[a * d + b] * norm;
                cov[a * d + b] = v;
                cov[b * d + a] = v;
            }
        }
        let (eigenvalues, components) = jacobi_eigen(&mut cov, d);
        Ok(Klt {
            dim: d,
            eigenvalues,
            components,
            mean,
        })
    }

    /// Applies the transform: centers and rotates every point onto the
    /// principal directions (output dimension `j` = projection on the
    /// `j`-th largest-variance direction).
    ///
    /// # Errors
    ///
    /// Rejects dimension mismatches.
    pub fn transform(&self, data: &Dataset) -> Result<Dataset> {
        if data.dim() != self.dim {
            return Err(Error::DimensionMismatch {
                expected: self.dim,
                actual: data.dim(),
            });
        }
        let d = self.dim;
        let mut out = Vec::with_capacity(data.len() * d);
        let mut centered = vec![0.0f64; d];
        for i in 0..data.len() {
            let p = data.point(i);
            for (c, (&x, &m)) in centered.iter_mut().zip(p.iter().zip(&self.mean)) {
                *c = f64::from(x) - m;
            }
            for r in 0..d {
                let row = &self.components[r * d..(r + 1) * d];
                let y: f64 = row.iter().zip(&centered).map(|(a, b)| a * b).sum();
                out.push(y as f32);
            }
        }
        Dataset::from_flat(d, out)
    }

    /// Fraction of total variance captured by the first `k` components.
    pub fn explained_variance(&self, k: usize) -> f64 {
        let total: f64 = self.eigenvalues.iter().sum();
        if total <= 0.0 {
            return 1.0;
        }
        self.eigenvalues.iter().take(k).sum::<f64>() / total
    }
}

/// Cyclic Jacobi eigendecomposition of a symmetric matrix (in place).
/// Returns `(eigenvalues descending, eigenvectors row-major)`.
fn jacobi_eigen(a: &mut [f64], d: usize) -> (Vec<f64>, Vec<f64>) {
    // V starts as identity.
    let mut v = vec![0.0f64; d * d];
    for i in 0..d {
        v[i * d + i] = 1.0;
    }
    let max_sweeps = 32;
    for _ in 0..max_sweeps {
        let mut off = 0.0f64;
        for p in 0..d {
            for q in (p + 1)..d {
                off += a[p * d + q] * a[p * d + q];
            }
        }
        if off.sqrt() < 1e-12 {
            break;
        }
        for p in 0..d {
            for q in (p + 1)..d {
                let apq = a[p * d + q];
                if apq.abs() < 1e-300 {
                    continue;
                }
                let app = a[p * d + p];
                let aqq = a[q * d + q];
                let theta = 0.5 * (aqq - app) / apq;
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // Rotate rows/columns p and q of A.
                for k in 0..d {
                    let akp = a[k * d + p];
                    let akq = a[k * d + q];
                    a[k * d + p] = c * akp - s * akq;
                    a[k * d + q] = s * akp + c * akq;
                }
                for k in 0..d {
                    let apk = a[p * d + k];
                    let aqk = a[q * d + k];
                    a[p * d + k] = c * apk - s * aqk;
                    a[q * d + k] = s * apk + c * aqk;
                }
                // Accumulate the rotation into V (rows are eigenvectors).
                for k in 0..d {
                    let vpk = v[p * d + k];
                    let vqk = v[q * d + k];
                    v[p * d + k] = c * vpk - s * vqk;
                    v[q * d + k] = s * vpk + c * vqk;
                }
            }
        }
    }
    // Extract and sort by descending eigenvalue.
    let mut order: Vec<usize> = (0..d).collect();
    let evs: Vec<f64> = (0..d).map(|i| a[i * d + i]).collect();
    order.sort_by(|&x, &y| evs[y].total_cmp(&evs[x]));
    let eigenvalues: Vec<f64> = order.iter().map(|&i| evs[i]).collect();
    let mut components = Vec::with_capacity(d * d);
    for &i in &order {
        components.extend_from_slice(&v[i * d..(i + 1) * d]);
    }
    (eigenvalues, components)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdidx_core::rng::{seeded, standard_normal};
    use hdidx_core::stats::dim_stats;

    /// Correlated 2-d Gaussian: y = x + small noise.
    fn correlated_2d(n: usize, seed: u64) -> Dataset {
        let mut rng = seeded(seed);
        let mut data = Vec::with_capacity(n * 2);
        for _ in 0..n {
            let x = standard_normal(&mut rng);
            let y = x + 0.1 * standard_normal(&mut rng);
            data.push(x as f32);
            data.push(y as f32);
        }
        Dataset::from_flat(2, data).unwrap()
    }

    #[test]
    fn recovers_principal_direction_of_correlated_gaussian() {
        let d = correlated_2d(20_000, 301);
        let klt = Klt::fit(&d).unwrap();
        // Principal direction ~ (1,1)/sqrt(2); second ~ (1,-1)/sqrt(2).
        let c0 = &klt.components[0..2];
        assert!(
            (c0[0].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 0.02,
            "c0 = {c0:?}"
        );
        assert!((c0[0] - c0[1]).abs() < 0.05, "c0 = {c0:?}");
        // Eigenvalues: ~2.0 and ~0.005 (descending).
        assert!(klt.eigenvalues[0] > klt.eigenvalues[1]);
        assert!(klt.explained_variance(1) > 0.98);
    }

    #[test]
    fn transform_decorrelates_and_orders_variance() {
        let d = correlated_2d(10_000, 302);
        let klt = Klt::fit(&d).unwrap();
        let t = klt.transform(&d).unwrap();
        let ids: Vec<u32> = (0..t.len() as u32).collect();
        let st = dim_stats(&t, &ids).unwrap();
        // Means ~0 after centering; variance descending; covariance ~0.
        assert!(st.mean[0].abs() < 0.02 && st.mean[1].abs() < 0.02);
        assert!(st.variance[0] > st.variance[1]);
        let mut cross = 0.0f64;
        for i in 0..t.len() {
            let p = t.point(i);
            cross += f64::from(p[0]) * f64::from(p[1]);
        }
        cross /= t.len() as f64;
        let scale = (st.variance[0] * st.variance[1]).sqrt();
        assert!(cross.abs() < 0.05 * scale, "cross-cov {cross}");
    }

    #[test]
    fn transform_preserves_pairwise_distances() {
        // Orthonormal rotation: Euclidean distances invariant.
        let d = correlated_2d(500, 303);
        let klt = Klt::fit(&d).unwrap();
        let t = klt.transform(&d).unwrap();
        for (a, b) in [(0usize, 1usize), (5, 99), (200, 450)] {
            let orig = d.dist2_to(a, d.point(b));
            let rot = t.dist2_to(a, t.point(b));
            assert!((orig - rot).abs() < 1e-3 * orig.max(1.0), "{orig} vs {rot}");
        }
    }

    #[test]
    fn eigenvalues_match_axis_aligned_variances() {
        // Already axis-aligned independent data: eigenvalues ==
        // per-dimension variances (sorted), components == axes.
        let mut rng = seeded(304);
        let mut data = Vec::new();
        for _ in 0..20_000 {
            data.push((3.0 * standard_normal(&mut rng)) as f32);
            data.push((0.5 * standard_normal(&mut rng)) as f32);
            data.push((standard_normal(&mut rng)) as f32);
        }
        let d = Dataset::from_flat(3, data).unwrap();
        let klt = Klt::fit(&d).unwrap();
        assert!(
            (klt.eigenvalues[0] - 9.0).abs() < 0.3,
            "{:?}",
            klt.eigenvalues
        );
        assert!((klt.eigenvalues[1] - 1.0).abs() < 0.1);
        assert!((klt.eigenvalues[2] - 0.25).abs() < 0.05);
    }

    #[test]
    fn analog_datasets_are_klt_stable() {
        // The synthetic analogs are generated with axis-aligned decaying
        // variance — applying a real KLT must (approximately) keep the
        // leading explained-variance profile.
        let d = crate::registry::NamedDataset::Texture48
            .spec_scaled(0.05)
            .generate()
            .unwrap();
        let klt = Klt::fit(&d).unwrap();
        assert!(klt.explained_variance(10) > 0.5);
        assert!(klt.explained_variance(48) > 0.999);
    }

    #[test]
    fn validation() {
        let one = Dataset::from_flat(2, vec![1.0, 2.0]).unwrap();
        assert!(Klt::fit(&one).is_err());
        let d = correlated_2d(100, 305);
        let klt = Klt::fit(&d).unwrap();
        let wrong = Dataset::from_flat(3, vec![0.0; 9]).unwrap();
        assert!(klt.transform(&wrong).is_err());
    }
}
