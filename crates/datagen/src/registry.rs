//! Named dataset analogs with the paper's cardinalities/dimensionalities.
//!
//! | Name        | Paper source                              | N × d        |
//! |-------------|-------------------------------------------|--------------|
//! | `Color64`   | CD-ROM color histograms (KLT)             | 112,361 × 64 |
//! | `Texture48` | Corel texture features (KLT)              | 26,697 × 48  |
//! | `Texture60` | Landsat texture features (KLT)            | 275,465 × 60 |
//! | `Isolet617` | spoken-letter audio features              | 7,800 × 617  |
//! | `Stock360`  | one year of 6,500 stock prices (DFT)      | 6,500 × 360  |
//! | `Uniform8d` | §5.2 uniformity sanity check              | 100,000 × 8  |
//!
//! Each analog can be scaled down (`spec_scaled`) for fast tests: the skew
//! structure is preserved while N shrinks.

use crate::clustered::{ClusteredSpec, Tail};
use crate::stock::StockSpec;
use crate::uniform::UniformSpec;
use hdidx_core::{Dataset, Result};

/// The generator behind a named analog.
#[derive(Debug, Clone, PartialEq)]
pub enum DatasetSpec {
    /// Gaussian-mixture with KLT-like variance decay.
    Clustered(ClusteredSpec),
    /// DFT-transformed random walks.
    Stock(StockSpec),
    /// I.i.d. uniform.
    Uniform(UniformSpec),
}

impl DatasetSpec {
    /// Generates the dataset.
    ///
    /// # Errors
    ///
    /// Propagates the underlying generator's validation errors.
    pub fn generate(&self) -> Result<Dataset> {
        match self {
            DatasetSpec::Clustered(s) => s.generate(),
            DatasetSpec::Stock(s) => s.generate(),
            DatasetSpec::Uniform(s) => s.generate(),
        }
    }

    /// Number of points the spec will generate.
    pub fn n(&self) -> usize {
        match self {
            DatasetSpec::Clustered(s) => s.n,
            DatasetSpec::Stock(s) => s.n,
            DatasetSpec::Uniform(s) => s.n,
        }
    }

    /// Dimensionality the spec will generate.
    pub fn dim(&self) -> usize {
        match self {
            DatasetSpec::Clustered(s) => s.dim,
            DatasetSpec::Stock(s) => s.dim,
            DatasetSpec::Uniform(s) => s.dim,
        }
    }
}

/// The five dataset analogs of the paper's Table 1 plus the §5.2 uniform
/// sanity set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NamedDataset {
    /// COLOR64 analog: 112,361 × 64, clustered, KLT-like spectrum.
    Color64,
    /// TEXTURE48 analog: 26,697 × 48.
    Texture48,
    /// TEXTURE60 analog: 275,465 × 60 — the paper's workhorse dataset.
    Texture60,
    /// ISOLET617 analog: 7,800 × 617 (d ≫ N regime).
    Isolet617,
    /// STOCK360 analog: 6,500 × 360, DFT energy compaction.
    Stock360,
    /// 100,000 × 8 uniform points for the §5.2 check.
    Uniform8d,
}

impl NamedDataset {
    /// All named datasets, in the paper's Table 1 order.
    pub const ALL: [NamedDataset; 6] = [
        NamedDataset::Color64,
        NamedDataset::Texture48,
        NamedDataset::Texture60,
        NamedDataset::Isolet617,
        NamedDataset::Stock360,
        NamedDataset::Uniform8d,
    ];

    /// Display name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            NamedDataset::Color64 => "COLOR64",
            NamedDataset::Texture48 => "TEXTURE48",
            NamedDataset::Texture60 => "TEXTURE60",
            NamedDataset::Isolet617 => "ISOLET617",
            NamedDataset::Stock360 => "STOCK360",
            NamedDataset::Uniform8d => "UNIFORM8D",
        }
    }

    /// Full-size spec with the paper's N and d.
    pub fn spec(&self) -> DatasetSpec {
        self.spec_scaled(1.0)
    }

    /// Spec with cardinality scaled by `fraction` (clamped to at least 64
    /// points). Dimensionality and skew structure are preserved.
    pub fn spec_scaled(&self, fraction: f64) -> DatasetSpec {
        let scale = |n: usize| ((n as f64 * fraction) as usize).max(64);
        match self {
            NamedDataset::Color64 => DatasetSpec::Clustered(ClusteredSpec {
                n: scale(112_361),
                dim: 64,
                n_clusters: 40,
                decay: 0.06,
                spread: 0.35,
                tail: Tail::Uniform,
                seed: 0x0C01_0464,
            }),
            NamedDataset::Texture48 => DatasetSpec::Clustered(ClusteredSpec {
                n: scale(26_697),
                dim: 48,
                n_clusters: 25,
                decay: 0.07,
                spread: 0.3,
                tail: Tail::Uniform,
                seed: 0x7E87_0048,
            }),
            NamedDataset::Texture60 => DatasetSpec::Clustered(ClusteredSpec {
                n: scale(275_465),
                dim: 60,
                n_clusters: 60,
                decay: 0.05,
                spread: 0.6,
                tail: Tail::Uniform,
                seed: 0x7E87_0060,
            }),
            NamedDataset::Isolet617 => DatasetSpec::Clustered(ClusteredSpec {
                n: scale(7_800),
                dim: 617,
                n_clusters: 26, // one per spoken letter
                decay: 0.01,
                spread: 0.4,
                tail: Tail::Uniform,
                seed: 0x1501_0617,
            }),
            NamedDataset::Stock360 => DatasetSpec::Stock(StockSpec {
                n: scale(6_500),
                dim: 360,
                volatility: 0.8,
                seed: 0x570C_0360,
            }),
            NamedDataset::Uniform8d => DatasetSpec::Uniform(UniformSpec {
                n: scale(100_000),
                dim: 8,
                seed: 0x0001_0008,
            }),
        }
    }

    /// Page size (bytes) used for this dataset's index: 8 KB as in the
    /// paper, except the 360/617-dimensional sets whose directory entries
    /// do not fit an 8 KB page (2·d·4 B + 8 B per entry); those use 32 KB.
    pub fn page_bytes(&self) -> usize {
        match self {
            NamedDataset::Isolet617 | NamedDataset::Stock360 => 32_768,
            _ => 8_192,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_match_paper_table1() {
        assert_eq!(NamedDataset::Color64.spec().n(), 112_361);
        assert_eq!(NamedDataset::Color64.spec().dim(), 64);
        assert_eq!(NamedDataset::Texture48.spec().n(), 26_697);
        assert_eq!(NamedDataset::Texture48.spec().dim(), 48);
        assert_eq!(NamedDataset::Texture60.spec().n(), 275_465);
        assert_eq!(NamedDataset::Texture60.spec().dim(), 60);
        assert_eq!(NamedDataset::Isolet617.spec().n(), 7_800);
        assert_eq!(NamedDataset::Isolet617.spec().dim(), 617);
        assert_eq!(NamedDataset::Stock360.spec().n(), 6_500);
        assert_eq!(NamedDataset::Stock360.spec().dim(), 360);
    }

    #[test]
    fn scaled_specs_shrink_but_keep_dim() {
        let s = NamedDataset::Texture60.spec_scaled(0.01);
        assert_eq!(s.dim(), 60);
        assert_eq!(s.n(), 2_754);
        // Tiny fractions clamp to 64 points.
        assert_eq!(NamedDataset::Stock360.spec_scaled(1e-9).n(), 64);
    }

    #[test]
    fn scaled_generation_works_for_all() {
        for ds in NamedDataset::ALL {
            let d = ds.spec_scaled(0.002).generate().unwrap();
            assert_eq!(d.dim(), ds.spec().dim(), "{}", ds.name());
            assert!(d.len() >= 64);
        }
    }

    #[test]
    fn page_bytes_sizes() {
        // Topology validity for these sizes is checked in the integration
        // tests (datagen does not depend on vamsplit).
        assert_eq!(NamedDataset::Texture60.page_bytes(), 8192);
        assert_eq!(NamedDataset::Isolet617.page_bytes(), 32_768);
        assert_eq!(NamedDataset::Stock360.page_bytes(), 32_768);
    }
}
