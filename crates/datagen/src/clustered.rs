//! Gaussian-mixture generator with KLT-like per-dimension variance decay.
//!
//! Model: `n_clusters` centers are drawn from `N(0, diag(sigma_j^2))` with
//! `sigma_j = exp(-decay * j)`; each point picks a cluster (uniformly) and
//! adds `N(0, (spread * sigma_j)^2)` noise per dimension. The per-dimension
//! *global* variance therefore decays exponentially — the signature of
//! KLT/PCA-rotated real feature data — and the data is clustered, which is
//! exactly the structure the paper's sampling argument relies on
//! ("sampling ... preserves clusters", §2.4).

use hdidx_core::rng::Rng;
use hdidx_core::rng::{seeded, standard_normal};
use hdidx_core::{Dataset, Error, Result};

/// Parameters of the clustered generator.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusteredSpec {
    /// Number of points.
    pub n: usize,
    /// Dimensionality.
    pub dim: usize,
    /// Number of mixture components.
    pub n_clusters: usize,
    /// Per-dimension scale decay rate: `sigma_j = exp(-decay * j)`.
    /// 0 disables decay; ≈0.05 gives a realistic KLT spectrum in 60-d.
    pub decay: f64,
    /// Cluster spread relative to the center scale (≈0.15–0.4 for tight
    /// clusters, 1.0 degenerates to a single blob).
    pub spread: f64,
    /// In-cluster noise shape. Real KLT-transformed feature clouds are
    /// compact with light tails; [`Tail::Uniform`] models that (and makes
    /// the paper's in-page-uniformity assumption hold within clusters),
    /// while [`Tail::Gaussian`] stresses the predictors with heavier tails.
    pub tail: Tail,
    /// RNG seed.
    pub seed: u64,
}

/// In-cluster noise distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tail {
    /// Normal noise per dimension.
    Gaussian,
    /// Uniform noise in `[-spread·σ_j, +spread·σ_j]` per dimension.
    Uniform,
}

impl ClusteredSpec {
    /// Generates the dataset.
    ///
    /// # Errors
    ///
    /// Rejects zero `n`, `dim` or `n_clusters` and non-finite/negative
    /// `decay`/`spread`.
    pub fn generate(&self) -> Result<Dataset> {
        if self.n == 0 || self.dim == 0 || self.n_clusters == 0 {
            return Err(Error::invalid(
                "spec",
                "n, dim and n_clusters must be positive",
            ));
        }
        if !(self.decay.is_finite() && self.decay >= 0.0) {
            return Err(Error::invalid("decay", "must be finite and >= 0"));
        }
        if !(self.spread.is_finite() && self.spread > 0.0) {
            return Err(Error::invalid("spread", "must be finite and > 0"));
        }
        let mut rng = seeded(self.seed);
        let sigmas: Vec<f64> = (0..self.dim)
            .map(|j| (-self.decay * j as f64).exp())
            .collect();
        // Cluster centers.
        let mut centers = vec![0.0f64; self.n_clusters * self.dim];
        for c in 0..self.n_clusters {
            for j in 0..self.dim {
                centers[c * self.dim + j] = standard_normal(&mut rng) * sigmas[j];
            }
        }
        let mut data = Vec::with_capacity(self.n * self.dim);
        for _ in 0..self.n {
            let c = rng.gen_range(0..self.n_clusters);
            let base = &centers[c * self.dim..(c + 1) * self.dim];
            for j in 0..self.dim {
                let noise = match self.tail {
                    Tail::Gaussian => standard_normal(&mut rng),
                    Tail::Uniform => 2.0 * rng.gen::<f64>() - 1.0,
                };
                let x = base[j] + noise * self.spread * sigmas[j];
                data.push(x as f32);
            }
        }
        Dataset::from_flat(self.dim, data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdidx_core::stats::dim_stats;

    fn spec() -> ClusteredSpec {
        ClusteredSpec {
            n: 5000,
            dim: 16,
            n_clusters: 8,
            decay: 0.15,
            spread: 0.3,
            tail: Tail::Uniform,
            seed: 7,
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = spec().generate().unwrap();
        let b = spec().generate().unwrap();
        assert_eq!(a, b);
        let mut s2 = spec();
        s2.seed = 8;
        assert_ne!(s2.generate().unwrap(), a);
    }

    #[test]
    fn shape_is_correct() {
        let d = spec().generate().unwrap();
        assert_eq!(d.len(), 5000);
        assert_eq!(d.dim(), 16);
    }

    #[test]
    fn variance_decays_with_dimension() {
        let d = spec().generate().unwrap();
        let ids: Vec<u32> = (0..d.len() as u32).collect();
        let st = dim_stats(&d, &ids).unwrap();
        // Leading dimension should carry far more variance than the last.
        assert!(
            st.variance[0] > 5.0 * st.variance[15],
            "var[0] = {}, var[15] = {}",
            st.variance[0],
            st.variance[15]
        );
    }

    #[test]
    fn data_is_clustered_not_uniform() {
        // With tight clusters, the average distance to the nearest of the
        // k cluster mates is much smaller than the global scale.
        let d = ClusteredSpec {
            n: 2000,
            dim: 8,
            n_clusters: 4,
            decay: 0.0,
            spread: 0.05,
            tail: Tail::Gaussian,
            seed: 11,
        }
        .generate()
        .unwrap();
        let r = hdidx_core::knn::scan_knn_radius(&d, d.point(0), 10).unwrap();
        let far = hdidx_core::knn::scan_knn_radius(&d, d.point(0), 1500).unwrap();
        assert!(r < 0.2 * far, "10-NN radius {r} vs 1500-NN radius {far}");
    }

    #[test]
    fn invalid_specs_rejected() {
        let mut s = spec();
        s.n = 0;
        assert!(s.generate().is_err());
        let mut s = spec();
        s.n_clusters = 0;
        assert!(s.generate().is_err());
        let mut s = spec();
        s.decay = -1.0;
        assert!(s.generate().is_err());
        let mut s = spec();
        s.spread = 0.0;
        assert!(s.generate().is_err());
    }
}
