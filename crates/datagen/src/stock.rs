//! STOCK360 analog: random-walk price series transformed by a DFT.
//!
//! The paper's STOCK360 dataset is "the price of 6,500 stocks over one year
//! (transformed using DFT)". We generate geometric-random-walk-like series
//! and apply a real DFT, interleaving the cosine/sine coefficients into the
//! output dimensions. Random walks have a `1/f^2` power spectrum, so the
//! transformed data concentrates almost all energy in the leading
//! coefficients — the extreme low-intrinsic-dimensionality regime in which
//! the paper reports that the fractal baseline becomes inapplicable while
//! sampling still predicts within −8 % … +0.7 %.

use hdidx_core::rng::{seeded, standard_normal};
use hdidx_core::{Dataset, Error, Result};

/// Parameters of the stock-series generator.
#[derive(Debug, Clone, PartialEq)]
pub struct StockSpec {
    /// Number of series (points).
    pub n: usize,
    /// Output dimensionality = series length (DFT preserves length).
    pub dim: usize,
    /// Daily volatility of the walk.
    pub volatility: f64,
    /// RNG seed.
    pub seed: u64,
}

impl StockSpec {
    /// Generates the dataset: one DFT-transformed random walk per point.
    ///
    /// # Errors
    ///
    /// Rejects zero `n`/`dim` and non-positive/non-finite volatility.
    pub fn generate(&self) -> Result<Dataset> {
        if self.n == 0 || self.dim == 0 {
            return Err(Error::invalid("spec", "n and dim must be positive"));
        }
        if !(self.volatility.is_finite() && self.volatility > 0.0) {
            return Err(Error::invalid("volatility", "must be finite and > 0"));
        }
        let mut rng = seeded(self.seed);
        let len = self.dim;
        let mut series = vec![0.0f64; len];
        let mut data = Vec::with_capacity(self.n * len);
        let mut coeffs = vec![0.0f64; len];
        for _ in 0..self.n {
            // Random walk starting at a random level.
            let mut level = 10.0 + 5.0 * standard_normal(&mut rng);
            for s in series.iter_mut() {
                level += self.volatility * standard_normal(&mut rng);
                *s = level;
            }
            real_dft(&series, &mut coeffs);
            data.extend(coeffs.iter().map(|&c| c as f32));
        }
        Dataset::from_flat(len, data)
    }
}

/// Real DFT packing: output[0] = DC, output[2m-1] / output[2m] = cos / sin
/// coefficients of frequency m, normalized by 1/sqrt(len) so the transform
/// is (close to) orthonormal and Euclidean distances are preserved.
///
/// O(len²); series lengths here are a few hundred, so this costs a few
/// hundred kiloflops per point and keeps the dependency list clean.
///
/// # Panics
///
/// Debug-asserts `out.len() == series.len()`.
pub fn real_dft(series: &[f64], out: &mut [f64]) {
    debug_assert_eq!(series.len(), out.len());
    let len = series.len();
    let norm = 1.0 / (len as f64).sqrt();
    let w = std::f64::consts::TAU / len as f64;
    out[0] = series.iter().sum::<f64>() * norm;
    let mut idx = 1usize;
    let mut m = 1usize;
    while idx < len {
        let mut re = 0.0f64;
        let mut im = 0.0f64;
        for (t, &x) in series.iter().enumerate() {
            let ang = w * (m as f64) * (t as f64);
            re += x * ang.cos();
            im += x * ang.sin();
        }
        out[idx] = re * norm * std::f64::consts::SQRT_2;
        idx += 1;
        if idx < len {
            out[idx] = im * norm * std::f64::consts::SQRT_2;
            idx += 1;
        }
        m += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdidx_core::stats::dim_stats;

    #[test]
    fn deterministic_and_shaped() {
        let spec = StockSpec {
            n: 50,
            dim: 36,
            volatility: 0.5,
            seed: 3,
        };
        let a = spec.generate().unwrap();
        let b = spec.generate().unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 50);
        assert_eq!(a.dim(), 36);
    }

    #[test]
    fn energy_concentrates_in_leading_coefficients() {
        let d = StockSpec {
            n: 200,
            dim: 64,
            volatility: 1.0,
            seed: 4,
        }
        .generate()
        .unwrap();
        let ids: Vec<u32> = (0..d.len() as u32).collect();
        let st = dim_stats(&d, &ids).unwrap();
        let head: f64 = st.variance[..8].iter().sum();
        let tail: f64 = st.variance[32..].iter().sum();
        assert!(head > 20.0 * tail, "head {head} vs tail {tail}");
    }

    #[test]
    fn dft_of_constant_is_dc_only() {
        let series = vec![2.0f64; 16];
        let mut out = vec![0.0f64; 16];
        real_dft(&series, &mut out);
        assert!((out[0] - 2.0 * 4.0).abs() < 1e-9); // 2 * sqrt(16)
        for &c in &out[1..] {
            assert!(c.abs() < 1e-9);
        }
    }

    #[test]
    fn dft_of_pure_cosine_hits_one_bin() {
        let len = 32usize;
        let series: Vec<f64> = (0..len)
            .map(|t| (std::f64::consts::TAU * 3.0 * t as f64 / len as f64).cos())
            .collect();
        let mut out = vec![0.0f64; len];
        real_dft(&series, &mut out);
        // Frequency 3 cosine coefficient sits at index 2*3 - 1 = 5.
        let expect = (len as f64 / 2.0) / (len as f64).sqrt() * std::f64::consts::SQRT_2;
        assert!((out[5] - expect).abs() < 1e-9, "out[5] = {}", out[5]);
        for (i, &c) in out.iter().enumerate() {
            if i != 5 {
                assert!(c.abs() < 1e-9, "bin {i} = {c}");
            }
        }
    }

    #[test]
    fn invalid_specs_rejected() {
        assert!(StockSpec {
            n: 0,
            dim: 8,
            volatility: 1.0,
            seed: 0
        }
        .generate()
        .is_err());
        assert!(StockSpec {
            n: 5,
            dim: 0,
            volatility: 1.0,
            seed: 0
        }
        .generate()
        .is_err());
        assert!(StockSpec {
            n: 5,
            dim: 8,
            volatility: 0.0,
            seed: 0
        }
        .generate()
        .is_err());
    }
}
