//! # hdidx-datagen
//!
//! Deterministic synthetic dataset analogs and query workloads.
//!
//! The paper evaluates on five **real** datasets (its Table 1) that are not
//! publicly available. Following the reproduction's substitution rule
//! (documented in `DESIGN.md`), this crate generates synthetic analogs with
//! matched cardinality, dimensionality and — crucially — matched *skew
//! structure*:
//!
//! * [`clustered`] — Gaussian-mixture data with KLT-like exponentially
//!   decaying per-dimension variance. KLT-transformed feature data (the
//!   paper's COLOR64/TEXTURE48/TEXTURE60/ISOLET617) concentrates energy in
//!   the leading dimensions and is strongly clustered; both properties
//!   drive the paper's results (sampling preserves clusters; fractal/
//!   uniform models break on low intrinsic dimensionality).
//! * [`stock`] — random-walk price series transformed by a DFT, the same
//!   transform the paper applied to STOCK360.
//! * [`uniform`] — i.i.d. uniform data for the paper's §5.2 sanity check.
//! * [`registry`] — the five named analogs with the paper's exact N and d,
//!   plus scaled-down variants for fast tests.
//! * [`workload`] — density-biased k-NN query workloads with exact radii
//!   (full-scan ground truth, parallelized across queries).
//!
//! Everything is seeded; the same spec always yields the same bytes.

pub mod clustered;
pub mod klt;
pub mod registry;
pub mod stock;
pub mod uniform;
pub mod workload;

pub use registry::{DatasetSpec, NamedDataset};
pub use workload::{Query, Workload};
