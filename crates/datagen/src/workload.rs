//! Density-biased k-NN query workloads.
//!
//! The paper's workload (§4.2): pick `q` query points *from the dataset*
//! (density-biased — dense regions receive proportionally more queries),
//! then determine each query's k-NN sphere radius from the full dataset.
//! Every predictor and the ground-truth measurement consume the same
//! `(center, radius)` pairs, so prediction error isolates the page-layout
//! estimate, exactly as in the paper.
//!
//! Radius computation is an exact linear scan per query, running on the
//! blocked early-exit kernel of `hdidx_core::knn`; queries are independent
//! and fan out over the workspace [`Pool`] (order-preserving, so the
//! workload is identical for any thread count, and `--threads` /
//! `HDIDX_THREADS` steer it like every other hot path).

use hdidx_core::knn::scan_knn_radii;
use hdidx_core::rng::{sample_without_replacement, seeded};
use hdidx_core::{Dataset, Error, Result};
use hdidx_pool::Pool;

/// One ball query: a center (a dataset point) and its exact k-NN radius.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Id of the dataset point used as the query center.
    pub point_id: u32,
    /// Query center coordinates.
    pub center: Vec<f32>,
    /// Exact k-NN sphere radius over the full dataset.
    pub radius: f64,
}

/// A set of density-biased k-NN queries with exact radii.
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    /// Neighbor count the radii correspond to (the paper uses k = 21).
    pub k: usize,
    /// The queries.
    pub queries: Vec<Query>,
}

impl Workload {
    /// Builds a workload of `q` density-biased k-NN queries.
    ///
    /// # Errors
    ///
    /// Rejects `q == 0`, `k == 0` and an empty dataset.
    pub fn density_biased(data: &Dataset, q: usize, k: usize, seed: u64) -> Result<Workload> {
        if q == 0 {
            return Err(Error::invalid("q", "need at least one query"));
        }
        if k == 0 {
            return Err(Error::invalid("k", "k must be positive"));
        }
        if data.is_empty() {
            return Err(Error::EmptyInput("dataset for workload"));
        }
        let mut rng = seeded(seed);
        let ids = sample_without_replacement(&mut rng, data.len(), q);
        let radii = parallel_radii(data, &ids, k)?;
        let queries = ids
            .iter()
            .zip(radii)
            .map(|(&id, radius)| Query {
                point_id: id,
                center: data.point(id as usize).to_vec(),
                radius,
            })
            .collect();
        Ok(Workload { k, queries })
    }

    /// Builds a workload of `q` density-biased **range** queries with a
    /// fixed radius (the paper notes its technique "can also be applied to
    /// range queries" — a range query is a ball with a known radius, so
    /// the prediction path is identical).
    ///
    /// # Errors
    ///
    /// Rejects `q == 0`, a non-finite/negative radius and an empty
    /// dataset.
    pub fn range_biased(data: &Dataset, q: usize, radius: f64, seed: u64) -> Result<Workload> {
        if q == 0 {
            return Err(Error::invalid("q", "need at least one query"));
        }
        if !(radius.is_finite() && radius >= 0.0) {
            return Err(Error::invalid("radius", "must be finite and >= 0"));
        }
        if data.is_empty() {
            return Err(Error::EmptyInput("dataset for workload"));
        }
        let mut rng = seeded(seed);
        let ids = sample_without_replacement(&mut rng, data.len(), q);
        let queries = ids
            .iter()
            .map(|&id| Query {
                point_id: id,
                center: data.point(id as usize).to_vec(),
                radius,
            })
            .collect();
        Ok(Workload { k: 0, queries })
    }

    /// Recomputes every radius against a different dataset (used by the
    /// Figure-14 experiment, where queries live in a projected subspace).
    ///
    /// # Errors
    ///
    /// Propagates scan errors (dimension mismatch, empty data).
    pub fn with_radii_from(&self, data: &Dataset) -> Result<Workload> {
        let ids: Vec<u32> = self.queries.iter().map(|q| q.point_id).collect();
        let radii = parallel_radii(data, &ids, self.k)?;
        let queries = ids
            .iter()
            .zip(radii)
            .map(|(&id, radius)| Query {
                point_id: id,
                center: data.point(id as usize).to_vec(),
                radius,
            })
            .collect();
        Ok(Workload { k: self.k, queries })
    }

    /// Number of queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// Whether the workload is empty.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Mean query radius — a useful summary statistic in experiment logs.
    pub fn mean_radius(&self) -> f64 {
        if self.queries.is_empty() {
            return 0.0;
        }
        self.queries.iter().map(|q| q.radius).sum::<f64>() / self.queries.len() as f64
    }
}

/// Exact k-NN radii for the points at `ids`, fanned out over the ambient
/// workspace pool via the batch kernel in `hdidx_core::knn`.
fn parallel_radii(data: &Dataset, ids: &[u32], k: usize) -> Result<Vec<f64>> {
    scan_knn_radii(data, ids, k, &Pool::current())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uniform::UniformSpec;
    use hdidx_core::knn::scan_knn_radius;

    fn data() -> Dataset {
        UniformSpec {
            n: 2_000,
            dim: 6,
            seed: 77,
        }
        .generate()
        .unwrap()
    }

    #[test]
    fn workload_is_deterministic_and_sized() {
        let d = data();
        let a = Workload::density_biased(&d, 50, 21, 1).unwrap();
        let b = Workload::density_biased(&d, 50, 21, 1).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 50);
        assert!(!a.is_empty());
        let c = Workload::density_biased(&d, 50, 21, 2).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn radii_match_serial_ground_truth() {
        let d = data();
        let w = Workload::density_biased(&d, 20, 5, 3).unwrap();
        for q in &w.queries {
            let expect = scan_knn_radius(&d, &q.center, 5).unwrap();
            assert_eq!(q.radius, expect);
            assert_eq!(q.center, d.point(q.point_id as usize));
        }
    }

    #[test]
    fn centers_come_from_dataset() {
        let d = data();
        let w = Workload::density_biased(&d, 10, 3, 4).unwrap();
        for q in &w.queries {
            // The query point itself is in the data, so radius(k=1) == 0
            // and radius(k=3) is the distance to its 2nd real neighbor.
            assert!(q.radius > 0.0);
            assert!((q.point_id as usize) < d.len());
        }
    }

    #[test]
    fn recompute_radii_on_projection() {
        let d = data();
        let w = Workload::density_biased(&d, 10, 5, 5).unwrap();
        let proj = d.project_prefix(3).unwrap();
        let wp = w.with_radii_from(&proj).unwrap();
        assert_eq!(wp.len(), w.len());
        for (orig, p) in w.queries.iter().zip(&wp.queries) {
            assert_eq!(orig.point_id, p.point_id);
            assert_eq!(p.center.len(), 3);
            // Projection can only shrink distances.
            assert!(p.radius <= orig.radius + 1e-9);
        }
    }

    #[test]
    fn mean_radius_positive() {
        let d = data();
        let w = Workload::density_biased(&d, 25, 10, 6).unwrap();
        assert!(w.mean_radius() > 0.0);
    }

    #[test]
    fn validation() {
        let d = data();
        assert!(Workload::density_biased(&d, 0, 5, 0).is_err());
        assert!(Workload::density_biased(&d, 5, 0, 0).is_err());
        let empty = Dataset::with_capacity(2, 0).unwrap();
        assert!(Workload::density_biased(&empty, 5, 5, 0).is_err());
    }

    #[test]
    fn range_workload_fixed_radius() {
        let d = data();
        let w = Workload::range_biased(&d, 30, 0.4, 7).unwrap();
        assert_eq!(w.len(), 30);
        assert!(w.queries.iter().all(|q| q.radius == 0.4));
        assert!((w.mean_radius() - 0.4).abs() < 1e-12);
        // Centers still come from the data (density bias).
        for q in &w.queries {
            assert_eq!(q.center, d.point(q.point_id as usize));
        }
        assert!(Workload::range_biased(&d, 0, 0.4, 7).is_err());
        assert!(Workload::range_biased(&d, 5, f64::NAN, 7).is_err());
        assert!(Workload::range_biased(&d, 5, -1.0, 7).is_err());
    }
}
