//! I.i.d. uniform data over the unit hypercube.
//!
//! Used by the paper's §5.2 sanity check: on genuinely uniform data every
//! predictor's in-page-uniformity assumption holds exactly and the relative
//! errors collapse to −0.5 % … −3 %.

use hdidx_core::rng::seeded;
use hdidx_core::rng::Rng;
use hdidx_core::{Dataset, Error, Result};

/// Parameters of the uniform generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UniformSpec {
    /// Number of points.
    pub n: usize,
    /// Dimensionality.
    pub dim: usize,
    /// RNG seed.
    pub seed: u64,
}

impl UniformSpec {
    /// Generates `n` points uniform in `[0, 1]^dim`.
    ///
    /// # Errors
    ///
    /// Rejects zero `n` or `dim`.
    pub fn generate(&self) -> Result<Dataset> {
        if self.n == 0 || self.dim == 0 {
            return Err(Error::invalid("spec", "n and dim must be positive"));
        }
        let mut rng = seeded(self.seed);
        let data: Vec<f32> = (0..self.n * self.dim).map(|_| rng.gen::<f32>()).collect();
        Dataset::from_flat(self.dim, data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdidx_core::stats::dim_stats;

    #[test]
    fn shape_and_determinism() {
        let s = UniformSpec {
            n: 1000,
            dim: 8,
            seed: 5,
        };
        let a = s.generate().unwrap();
        assert_eq!(a.len(), 1000);
        assert_eq!(a.dim(), 8);
        assert_eq!(a, s.generate().unwrap());
    }

    #[test]
    fn moments_match_uniform() {
        let d = UniformSpec {
            n: 20_000,
            dim: 4,
            seed: 6,
        }
        .generate()
        .unwrap();
        let ids: Vec<u32> = (0..d.len() as u32).collect();
        let st = dim_stats(&d, &ids).unwrap();
        for j in 0..4 {
            assert!(
                (st.mean[j] - 0.5).abs() < 0.01,
                "mean[{j}] = {}",
                st.mean[j]
            );
            assert!(
                (st.variance[j] - 1.0 / 12.0).abs() < 0.005,
                "var[{j}] = {}",
                st.variance[j]
            );
        }
    }

    #[test]
    fn bounds_respected() {
        let d = UniformSpec {
            n: 500,
            dim: 3,
            seed: 7,
        }
        .generate()
        .unwrap();
        assert!(d.as_flat().iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn invalid_rejected() {
        assert!(UniformSpec {
            n: 0,
            dim: 3,
            seed: 0
        }
        .generate()
        .is_err());
        assert!(UniformSpec {
            n: 3,
            dim: 0,
            seed: 0
        }
        .generate()
        .is_err());
    }
}
