//! CSV dataset I/O: one point per line, comma-separated coordinates.
//! Blank lines and `#` comment lines are skipped. A header line is
//! detected (first line whose first field does not parse as a number) and
//! ignored.
//!
//! Every malformed input — ragged rows, non-numeric or non-finite fields,
//! empty files, header-only files — is reported as a line-numbered
//! [`Error::InvalidParameter`] (parameter `csv`), never a panic.

use hdidx_core::{Dataset, Error, Result};
use std::io::{BufRead, BufWriter, Write};
use std::path::Path;

/// Reads a dataset from a CSV file.
///
/// # Errors
///
/// [`Error::InvalidParameter`] for I/O failures, ragged rows, non-numeric
/// or non-finite fields, or a file with no data rows.
pub fn read_csv(path: &Path) -> Result<Dataset> {
    let file = std::fs::File::open(path)
        .map_err(|e| Error::invalid("csv", format!("cannot open {path:?}: {e}")))?;
    let reader = std::io::BufReader::new(file);
    parse_csv(reader)
}

/// Parses CSV content from any reader (unit-test seam).
///
/// # Errors
///
/// Same conditions as [`read_csv`].
pub fn parse_csv<R: BufRead>(reader: R) -> Result<Dataset> {
    let mut dim = 0usize;
    let mut data: Vec<f32> = Vec::new();
    let mut row = 0usize;
    let mut header_allowed = true;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| {
            Error::invalid("csv", format!("read error at line {}: {e}", lineno + 1))
        })?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = trimmed.split(',').map(str::trim).collect();
        if header_allowed && fields[0].parse::<f32>().is_err() {
            // Header line: skip once.
            header_allowed = false;
            continue;
        }
        header_allowed = false;
        if fields.iter().any(|f| f.is_empty()) {
            return Err(Error::invalid(
                "csv",
                format!("line {}: empty field", lineno + 1),
            ));
        }
        if dim == 0 {
            dim = fields.len();
        } else if fields.len() != dim {
            return Err(Error::invalid(
                "csv",
                format!(
                    "line {}: expected {dim} fields, found {}",
                    lineno + 1,
                    fields.len()
                ),
            ));
        }
        for f in &fields {
            let v: f32 = f.parse().map_err(|_| {
                Error::invalid(
                    "csv",
                    format!("line {}: cannot parse `{f}` as a number", lineno + 1),
                )
            })?;
            if !v.is_finite() {
                return Err(Error::invalid(
                    "csv",
                    format!("line {}: non-finite value `{f}`", lineno + 1),
                ));
            }
            data.push(v);
        }
        row += 1;
    }
    if row == 0 {
        return Err(Error::invalid("csv", "no data rows found"));
    }
    Dataset::from_flat(dim, data)
}

/// Writes a dataset as CSV.
///
/// # Errors
///
/// [`Error::InvalidParameter`] on I/O failure.
pub fn write_csv(path: &Path, data: &Dataset) -> Result<()> {
    let file = std::fs::File::create(path)
        .map_err(|e| Error::invalid("csv", format!("cannot create {path:?}: {e}")))?;
    let mut w = BufWriter::new(file);
    let mut line = String::new();
    for i in 0..data.len() {
        line.clear();
        for (j, x) in data.point(i).iter().enumerate() {
            if j > 0 {
                line.push(',');
            }
            line.push_str(&format!("{x}"));
        }
        line.push('\n');
        w.write_all(line.as_bytes())
            .map_err(|e| Error::invalid("csv", format!("write error: {e}")))?;
    }
    w.flush()
        .map_err(|e| Error::invalid("csv", format!("write error: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<Dataset> {
        parse_csv(std::io::Cursor::new(s.to_string()))
    }

    /// The malformed-input contract: an `InvalidParameter` on the `csv`
    /// parameter whose message contains `needle`.
    fn assert_csv_err(input: &str, needle: &str) {
        match parse(input) {
            Err(Error::InvalidParameter { name, message }) => {
                assert_eq!(name, "csv", "{input:?}");
                assert!(message.contains(needle), "{input:?}: {message}");
            }
            other => panic!("{input:?}: expected InvalidParameter, got {other:?}"),
        }
    }

    #[test]
    fn parses_plain_csv() {
        let d = parse("1.0,2.0\n3.5,-4.25\n").unwrap();
        assert_eq!(d.dim(), 2);
        assert_eq!(d.len(), 2);
        assert_eq!(d.point(1), &[3.5, -4.25]);
    }

    #[test]
    fn skips_header_comments_and_blanks() {
        let d = parse("# comment\nx,y\n\n1,2\n# another\n3,4\n").unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d.point(0), &[1.0, 2.0]);
    }

    #[test]
    fn ragged_rows_are_line_numbered_errors() {
        assert_csv_err("1,2\n3\n", "line 2: expected 2 fields, found 1");
        assert_csv_err("1,2\n3,4,5\n", "line 2: expected 2 fields, found 3");
        // Line numbers count raw lines, including skipped ones.
        assert_csv_err("# c\nx,y\n1,2\n\n3\n", "line 5: expected 2 fields");
    }

    #[test]
    fn bad_fields_are_line_numbered_errors() {
        assert_csv_err("1,abc\n", "line 1: cannot parse `abc`");
        assert_csv_err("1,2\n3,nan\n", "line 2: non-finite value `nan`");
        assert_csv_err("1,inf\n", "line 1: non-finite value `inf`");
        assert_csv_err("1,-inf\n", "non-finite value `-inf`");
        assert_csv_err("1,,3\n", "line 1: empty field");
        // Two consecutive non-numeric lines: only one header allowed.
        assert_csv_err("x,y\na,b\n1,2\n", "line 2: cannot parse `a`");
    }

    #[test]
    fn empty_inputs_are_errors_not_panics() {
        assert_csv_err("", "no data rows");
        assert_csv_err("# only comments\n", "no data rows");
        assert_csv_err("\n\n\n", "no data rows");
        // A header with no data below it (zero-dimension dataset).
        assert_csv_err("x,y,z\n", "no data rows");
        assert_csv_err("x,y\n# trailing comment\n\n", "no data rows");
    }

    #[test]
    fn roundtrip_through_file() {
        let data = Dataset::from_flat(3, vec![1.0, 2.5, -3.0, 0.125, 4.0, 5.5]).unwrap();
        let dir = std::env::temp_dir().join("hdidx_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.csv");
        write_csv(&path, &data).unwrap();
        let back = read_csv(&path).unwrap();
        assert_eq!(back, data);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_reported() {
        let err = read_csv(Path::new("/nonexistent/nope.csv")).unwrap_err();
        assert!(err.to_string().contains("cannot open"), "{err}");
        assert!(matches!(err, Error::InvalidParameter { name: "csv", .. }));
    }
}
