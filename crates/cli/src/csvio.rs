//! CSV dataset I/O: one point per line, comma-separated coordinates.
//! Blank lines and `#` comment lines are skipped. A header line is
//! detected (first line whose first field does not parse as a number) and
//! ignored.

use hdidx_core::Dataset;
use std::io::{BufRead, BufWriter, Write};
use std::path::Path;

/// Reads a dataset from a CSV file.
///
/// # Errors
///
/// Returns a message for I/O failures, ragged rows, non-numeric fields or
/// an empty file.
pub fn read_csv(path: &Path) -> Result<Dataset, String> {
    let file = std::fs::File::open(path).map_err(|e| format!("cannot open {path:?}: {e}"))?;
    let reader = std::io::BufReader::new(file);
    parse_csv(reader)
}

/// Parses CSV content from any reader (unit-test seam).
///
/// # Errors
///
/// Same conditions as [`read_csv`].
pub fn parse_csv<R: BufRead>(reader: R) -> Result<Dataset, String> {
    let mut dim = 0usize;
    let mut data: Vec<f32> = Vec::new();
    let mut row = 0usize;
    let mut header_allowed = true;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| format!("read error at line {}: {e}", lineno + 1))?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = trimmed.split(',').map(str::trim).collect();
        if header_allowed && fields[0].parse::<f32>().is_err() {
            // Header line: skip once.
            header_allowed = false;
            continue;
        }
        header_allowed = false;
        if dim == 0 {
            dim = fields.len();
        } else if fields.len() != dim {
            return Err(format!(
                "line {}: expected {dim} fields, found {}",
                lineno + 1,
                fields.len()
            ));
        }
        for f in &fields {
            let v: f32 = f
                .parse()
                .map_err(|_| format!("line {}: cannot parse `{f}` as a number", lineno + 1))?;
            if !v.is_finite() {
                return Err(format!("line {}: non-finite value `{f}`", lineno + 1));
            }
            data.push(v);
        }
        row += 1;
    }
    if row == 0 {
        return Err("no data rows found".to_string());
    }
    Dataset::from_flat(dim, data).map_err(|e| e.to_string())
}

/// Writes a dataset as CSV.
///
/// # Errors
///
/// Returns a message on I/O failure.
pub fn write_csv(path: &Path, data: &Dataset) -> Result<(), String> {
    let file = std::fs::File::create(path).map_err(|e| format!("cannot create {path:?}: {e}"))?;
    let mut w = BufWriter::new(file);
    let mut line = String::new();
    for i in 0..data.len() {
        line.clear();
        for (j, x) in data.point(i).iter().enumerate() {
            if j > 0 {
                line.push(',');
            }
            line.push_str(&format!("{x}"));
        }
        line.push('\n');
        w.write_all(line.as_bytes())
            .map_err(|e| format!("write error: {e}"))?;
    }
    w.flush().map_err(|e| format!("write error: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<Dataset, String> {
        parse_csv(std::io::Cursor::new(s.to_string()))
    }

    #[test]
    fn parses_plain_csv() {
        let d = parse("1.0,2.0\n3.5,-4.25\n").unwrap();
        assert_eq!(d.dim(), 2);
        assert_eq!(d.len(), 2);
        assert_eq!(d.point(1), &[3.5, -4.25]);
    }

    #[test]
    fn skips_header_comments_and_blanks() {
        let d = parse("# comment\nx,y\n\n1,2\n# another\n3,4\n").unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d.point(0), &[1.0, 2.0]);
    }

    #[test]
    fn rejects_ragged_and_bad_rows() {
        assert!(parse("1,2\n3\n").is_err());
        assert!(parse("1,abc\n").is_err());
        assert!(parse("1,inf\n").is_err());
        assert!(parse("").is_err());
        assert!(parse("# only comments\n").is_err());
        // Two consecutive non-numeric lines: only one header allowed.
        assert!(parse("x,y\na,b\n1,2\n").is_err());
    }

    #[test]
    fn roundtrip_through_file() {
        let data = Dataset::from_flat(3, vec![1.0, 2.5, -3.0, 0.125, 4.0, 5.5]).unwrap();
        let dir = std::env::temp_dir().join("hdidx_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.csv");
        write_csv(&path, &data).unwrap();
        let back = read_csv(&path).unwrap();
        assert_eq!(back, data);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_reported() {
        let err = read_csv(Path::new("/nonexistent/nope.csv")).unwrap_err();
        assert!(err.contains("cannot open"), "{err}");
    }
}
