//! Hand-rolled argument parsing (no external CLI dependency).
//!
//! Flag conventions, shared by every data command: `--seed` (RNG seed),
//! `--m` (memory budget in points), `--h-upper` (upper-tree height),
//! `--threads` (worker threads; 1 forces serial, absent = available
//! parallelism / `HDIDX_THREADS`), `--predictor` (a name from the
//! `hdidx_baselines::PREDICTOR_NAMES` registry).

use hdidx_baselines::PREDICTOR_NAMES;

/// A parsed invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct Cli {
    /// Subcommand.
    pub command: Command,
}

/// The subcommands.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Print dataset and topology information.
    Info {
        /// CSV path.
        data: String,
        /// Page size in bytes.
        page_bytes: usize,
    },
    /// Predict page accesses without building the index.
    Predict {
        /// CSV path.
        data: String,
        /// Page size in bytes.
        page_bytes: usize,
        /// Memory budget in points.
        m: usize,
        /// Registered predictor name (see `PREDICTOR_NAMES`).
        predictor: String,
        /// Number of queries.
        queries: usize,
        /// Neighbor count.
        k: usize,
        /// Explicit upper-tree height (None = recommended).
        h_upper: Option<usize>,
        /// Sampling fraction for the basic method (None = M/N).
        zeta: Option<f64>,
        /// RNG seed.
        seed: u64,
        /// Worker threads (None = available parallelism, 1 = serial).
        threads: Option<usize>,
        /// Fault-injection seed (None = `HDIDX_FAULT_SEED` or no faults).
        fault_seed: Option<u64>,
        /// Fault rate override in ppm (transient; torn/spikes at half).
        fault_ppm: Option<u32>,
    },
    /// Run every predictor plus the measured ground truth in one report.
    Compare {
        /// CSV path.
        data: String,
        /// Page size in bytes.
        page_bytes: usize,
        /// Memory budget in points.
        m: usize,
        /// Number of queries.
        queries: usize,
        /// Neighbor count.
        k: usize,
        /// RNG seed.
        seed: u64,
        /// Worker threads (None = available parallelism, 1 = serial).
        threads: Option<usize>,
        /// Fault-injection seed (None = `HDIDX_FAULT_SEED` or no faults).
        fault_seed: Option<u64>,
        /// Fault rate override in ppm (transient; torn/spikes at half).
        fault_ppm: Option<u32>,
    },
    /// Build the index (simulated on-disk) and measure ground truth.
    Measure {
        /// CSV path.
        data: String,
        /// Page size in bytes.
        page_bytes: usize,
        /// Memory budget in points.
        m: usize,
        /// Number of queries.
        queries: usize,
        /// Neighbor count.
        k: usize,
        /// RNG seed.
        seed: u64,
        /// Worker threads (None = available parallelism, 1 = serial).
        threads: Option<usize>,
        /// Fault-injection seed (None = `HDIDX_FAULT_SEED` or no faults).
        fault_seed: Option<u64>,
        /// Fault rate override in ppm (transient; torn/spikes at half).
        fault_ppm: Option<u32>,
    },
    /// Generate a named dataset analog as CSV.
    Generate {
        /// Analog name (color64, texture48, texture60, isolet617,
        /// stock360, uniform8d).
        dataset: String,
        /// Cardinality scale in (0, 1].
        scale: f64,
        /// Output CSV path.
        out: String,
    },
    /// Print usage.
    Help,
}

/// Usage text.
pub const USAGE: &str = "\
hdidx — sampling-based index cost prediction (Lang & Singh, SIGMOD 2001)

USAGE:
  hdidx info     --data <csv> [--page-bytes 8192]
  hdidx predict  --data <csv> --m <points>
                 [--predictor resampled|cutoff|basic|uniform|fractal|histogram|distdist]
                 [--queries 500] [--k 21] [--h-upper N] [--zeta F]
                 [--page-bytes 8192] [--seed 42] [--threads N]
                 [--fault-seed S] [--fault-ppm P]
  hdidx measure  --data <csv> --m <points> [--queries 500] [--k 21]
                 [--page-bytes 8192] [--seed 42] [--threads N]
                 [--fault-seed S] [--fault-ppm P]
  hdidx compare  --data <csv> --m <points> [--queries 500] [--k 21]
                 [--page-bytes 8192] [--seed 42] [--threads N]
                 [--fault-seed S] [--fault-ppm P]
  hdidx generate --dataset <name> [--scale 1.0] --out <csv>

`--threads 1` forces serial execution; omitting --threads uses the
HDIDX_THREADS environment variable or the machine's available
parallelism. Results are identical for any thread count.

`--fault-seed S` injects deterministic I/O faults (transient failures,
torn reads, latency spikes) into the simulated disk; `--fault-ppm P`
scales the transient rate in parts per million (default 2000; torn and
spikes run at half that). Omitting --fault-seed falls back to the
HDIDX_FAULT_SEED / HDIDX_FAULT_PPM environment variables; without
either, no faults are injected. The same fault seed reproduces the
identical fault trace, retry counts, and degraded output.
";

struct Opts {
    pairs: Vec<(String, String)>,
}

impl Opts {
    fn parse(rest: &[String]) -> Result<Opts, String> {
        let mut pairs = Vec::new();
        let mut i = 0;
        while i < rest.len() {
            let key = rest[i]
                .strip_prefix("--")
                .ok_or_else(|| format!("expected an option, got `{}`", rest[i]))?;
            let value = rest
                .get(i + 1)
                .ok_or_else(|| format!("option --{key} requires a value"))?;
            pairs.push((key.to_string(), value.clone()));
            i += 2;
        }
        Ok(Opts { pairs })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.pairs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn required(&self, key: &str) -> Result<String, String> {
        self.get(key)
            .map(str::to_string)
            .ok_or_else(|| format!("missing required option --{key}"))
    }

    fn parse_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("option --{key}: cannot parse `{v}`")),
        }
    }

    fn parse_opt<T: std::str::FromStr>(&self, key: &str) -> Result<Option<T>, String> {
        match self.get(key) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| format!("option --{key}: cannot parse `{v}`")),
        }
    }

    fn reject_unknown(&self, known: &[&str]) -> Result<(), String> {
        for (k, _) in &self.pairs {
            if !known.contains(&k.as_str()) {
                return Err(format!("unknown option --{k}"));
            }
        }
        Ok(())
    }
}

fn parse_threads(opts: &Opts) -> Result<Option<usize>, String> {
    let threads: Option<usize> = opts.parse_opt("threads")?;
    if threads == Some(0) {
        return Err("option --threads: must be at least 1".to_string());
    }
    Ok(threads)
}

impl Cli {
    /// Parses `argv` (without the program name).
    ///
    /// # Errors
    ///
    /// Returns a usage-style message for unknown commands/options or
    /// malformed values.
    pub fn parse(argv: &[String]) -> Result<Cli, String> {
        let Some(cmd) = argv.first() else {
            return Ok(Cli {
                command: Command::Help,
            });
        };
        let opts = Opts::parse(&argv[1..])?;
        let command = match cmd.as_str() {
            "help" | "--help" | "-h" => Command::Help,
            "info" => {
                opts.reject_unknown(&["data", "page-bytes"])?;
                Command::Info {
                    data: opts.required("data")?,
                    page_bytes: opts.parse_or("page-bytes", 8192usize)?,
                }
            }
            "predict" => {
                opts.reject_unknown(&[
                    "data",
                    "page-bytes",
                    "m",
                    "predictor",
                    "queries",
                    "k",
                    "h-upper",
                    "zeta",
                    "seed",
                    "threads",
                    "fault-seed",
                    "fault-ppm",
                ])?;
                let predictor = opts.get("predictor").unwrap_or("resampled").to_string();
                if !PREDICTOR_NAMES.contains(&predictor.as_str()) {
                    return Err(format!(
                        "unknown predictor `{predictor}` (expected one of {})",
                        PREDICTOR_NAMES.join(", ")
                    ));
                }
                Command::Predict {
                    data: opts.required("data")?,
                    page_bytes: opts.parse_or("page-bytes", 8192usize)?,
                    m: opts
                        .parse_opt("m")?
                        .ok_or("missing required option --m".to_string())?,
                    predictor,
                    queries: opts.parse_or("queries", 500usize)?,
                    k: opts.parse_or("k", 21usize)?,
                    h_upper: opts.parse_opt("h-upper")?,
                    zeta: opts.parse_opt("zeta")?,
                    seed: opts.parse_or("seed", 42u64)?,
                    threads: parse_threads(&opts)?,
                    fault_seed: opts.parse_opt("fault-seed")?,
                    fault_ppm: opts.parse_opt("fault-ppm")?,
                }
            }
            "compare" => {
                opts.reject_unknown(&[
                    "data",
                    "page-bytes",
                    "m",
                    "queries",
                    "k",
                    "seed",
                    "threads",
                    "fault-seed",
                    "fault-ppm",
                ])?;
                Command::Compare {
                    data: opts.required("data")?,
                    page_bytes: opts.parse_or("page-bytes", 8192usize)?,
                    m: opts
                        .parse_opt("m")?
                        .ok_or("missing required option --m".to_string())?,
                    queries: opts.parse_or("queries", 500usize)?,
                    k: opts.parse_or("k", 21usize)?,
                    seed: opts.parse_or("seed", 42u64)?,
                    threads: parse_threads(&opts)?,
                    fault_seed: opts.parse_opt("fault-seed")?,
                    fault_ppm: opts.parse_opt("fault-ppm")?,
                }
            }
            "measure" => {
                opts.reject_unknown(&[
                    "data",
                    "page-bytes",
                    "m",
                    "queries",
                    "k",
                    "seed",
                    "threads",
                    "fault-seed",
                    "fault-ppm",
                ])?;
                Command::Measure {
                    data: opts.required("data")?,
                    page_bytes: opts.parse_or("page-bytes", 8192usize)?,
                    m: opts
                        .parse_opt("m")?
                        .ok_or("missing required option --m".to_string())?,
                    queries: opts.parse_or("queries", 500usize)?,
                    k: opts.parse_or("k", 21usize)?,
                    seed: opts.parse_or("seed", 42u64)?,
                    threads: parse_threads(&opts)?,
                    fault_seed: opts.parse_opt("fault-seed")?,
                    fault_ppm: opts.parse_opt("fault-ppm")?,
                }
            }
            "generate" => {
                opts.reject_unknown(&["dataset", "scale", "out"])?;
                Command::Generate {
                    dataset: opts.required("dataset")?,
                    scale: opts.parse_or("scale", 1.0f64)?,
                    out: opts.required("out")?,
                }
            }
            other => return Err(format!("unknown command `{other}`\n{USAGE}")),
        };
        Ok(Cli { command })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn parses_predict_with_defaults() {
        let cli = Cli::parse(&argv("predict --data a.csv --m 1000")).unwrap();
        match cli.command {
            Command::Predict {
                data,
                page_bytes,
                m,
                predictor,
                queries,
                k,
                h_upper,
                zeta,
                seed,
                threads,
                fault_seed,
                fault_ppm,
            } => {
                assert_eq!(data, "a.csv");
                assert_eq!(page_bytes, 8192);
                assert_eq!(m, 1000);
                assert_eq!(predictor, "resampled");
                assert_eq!(queries, 500);
                assert_eq!(k, 21);
                assert_eq!(h_upper, None);
                assert_eq!(zeta, None);
                assert_eq!(seed, 42);
                assert_eq!(threads, None);
                assert_eq!(fault_seed, None);
                assert_eq!(fault_ppm, None);
            }
            other => panic!("wrong command: {other:?}"),
        }
    }

    #[test]
    fn parses_overrides() {
        let cli = Cli::parse(&argv(
            "predict --data a.csv --m 500 --predictor basic --zeta 0.3 --queries 10 --k 5 \
             --seed 7 --threads 2",
        ))
        .unwrap();
        match cli.command {
            Command::Predict {
                predictor,
                zeta,
                queries,
                k,
                seed,
                threads,
                ..
            } => {
                assert_eq!(predictor, "basic");
                assert_eq!(zeta, Some(0.3));
                assert_eq!(queries, 10);
                assert_eq!(k, 5);
                assert_eq!(seed, 7);
                assert_eq!(threads, Some(2));
            }
            other => panic!("wrong command: {other:?}"),
        }
    }

    #[test]
    fn every_registry_name_parses() {
        for &name in PREDICTOR_NAMES {
            let cli = Cli::parse(&argv(&format!(
                "predict --data a.csv --m 10 --predictor {name}"
            )))
            .unwrap();
            match cli.command {
                Command::Predict { predictor, .. } => assert_eq!(predictor, name),
                other => panic!("wrong command: {other:?}"),
            }
        }
    }

    #[test]
    fn parses_fault_flags() {
        let cli = Cli::parse(&argv(
            "measure --data d.csv --m 100 --fault-seed 7 --fault-ppm 20000",
        ))
        .unwrap();
        match cli.command {
            Command::Measure {
                fault_seed,
                fault_ppm,
                ..
            } => {
                assert_eq!(fault_seed, Some(7));
                assert_eq!(fault_ppm, Some(20_000));
            }
            other => panic!("wrong command: {other:?}"),
        }
        assert!(Cli::parse(&argv("predict --data a.csv --m 10 --fault-seed x")).is_err());
        assert!(Cli::parse(&argv("compare --data a.csv --m 10 --fault-ppm -1")).is_err());
        // info/generate take no fault flags.
        assert!(Cli::parse(&argv("info --data a.csv --fault-seed 1")).is_err());
    }

    #[test]
    fn rejects_bad_input() {
        assert!(Cli::parse(&argv("predict --data a.csv")).is_err()); // no --m
        assert!(Cli::parse(&argv("predict --m 10")).is_err()); // no --data
        assert!(Cli::parse(&argv("predict --data a.csv --m ten")).is_err());
        assert!(Cli::parse(&argv("predict --data a.csv --m 10 --predictor x")).is_err());
        assert!(Cli::parse(&argv("predict --data a.csv --m 10 --bogus 1")).is_err());
        assert!(Cli::parse(&argv("predict --data a.csv --m 10 --threads 0")).is_err());
        assert!(Cli::parse(&argv("measure --data a.csv --m 10 --threads zero")).is_err());
        assert!(Cli::parse(&argv("frobnicate")).is_err());
        assert!(Cli::parse(&argv("info --data a.csv extra")).is_err());
    }

    #[test]
    fn empty_and_help() {
        assert_eq!(Cli::parse(&[]).unwrap().command, Command::Help);
        assert_eq!(Cli::parse(&argv("help")).unwrap().command, Command::Help);
        assert_eq!(Cli::parse(&argv("--help")).unwrap().command, Command::Help);
    }

    #[test]
    fn parses_generate_and_measure() {
        let cli = Cli::parse(&argv(
            "generate --dataset texture60 --scale 0.1 --out o.csv",
        ))
        .unwrap();
        assert_eq!(
            cli.command,
            Command::Generate {
                dataset: "texture60".into(),
                scale: 0.1,
                out: "o.csv".into()
            }
        );
        let cli = Cli::parse(&argv("measure --data d.csv --m 100")).unwrap();
        match cli.command {
            Command::Measure { m, queries, .. } => {
                assert_eq!(m, 100);
                assert_eq!(queries, 500);
            }
            other => panic!("wrong command: {other:?}"),
        }
    }
}
