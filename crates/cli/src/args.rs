//! Hand-rolled argument parsing (no external CLI dependency).
//!
//! Flag conventions, shared by every data command: `--seed` (RNG seed),
//! `--m` (memory budget in points), `--h-upper` (upper-tree height),
//! `--threads` (worker threads; 1 forces serial, absent = available
//! parallelism / `HDIDX_THREADS`), `--predictor` (a name from the
//! `hdidx_baselines::PREDICTOR_NAMES` registry).

use hdidx_baselines::PREDICTOR_NAMES;
use hdidx_core::simd::Choice as SimdChoice;
use hdidx_diskio::BreakerConfig;
use hdidx_faults::{FaultPhase, RetryPolicy};
use hdidx_serve::{
    AdmissionControl, ArrivalModel, Deadlines, LanePolicy, MixSpec, OverloadPolicy, QueryClass,
};
use hdidx_store::Durability;

/// Storage backend selection for the commands that build an index
/// (`measure`, `serve`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// The simulated disk: access-pattern accounting only, no bytes.
    Sim,
    /// The file-backed page store: same charged accounting, plus real
    /// pages, checksums, a WAL, and an index snapshot under `--store`.
    File,
}

impl Backend {
    /// The stable name (`"sim"` / `"file"`).
    #[must_use]
    pub fn as_str(&self) -> &'static str {
        match self {
            Backend::Sim => "sim",
            Backend::File => "file",
        }
    }
}

/// A parsed invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct Cli {
    /// Subcommand.
    pub command: Command,
}

/// The subcommands.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Print dataset and topology information.
    Info {
        /// CSV path.
        data: String,
        /// Page size in bytes.
        page_bytes: usize,
    },
    /// Predict page accesses without building the index.
    Predict {
        /// CSV path.
        data: String,
        /// Page size in bytes.
        page_bytes: usize,
        /// Memory budget in points.
        m: usize,
        /// Registered predictor name (see `PREDICTOR_NAMES`).
        predictor: String,
        /// Number of queries.
        queries: usize,
        /// Neighbor count.
        k: usize,
        /// Explicit upper-tree height (None = recommended).
        h_upper: Option<usize>,
        /// Sampling fraction for the basic method (None = M/N).
        zeta: Option<f64>,
        /// RNG seed.
        seed: u64,
        /// Worker threads (None = available parallelism, 1 = serial).
        threads: Option<usize>,
        /// Fault-injection seed (None = `HDIDX_FAULT_SEED` or no faults).
        fault_seed: Option<u64>,
        /// Fault rate override in ppm (transient; torn/spikes at half).
        fault_ppm: Option<u32>,
        /// Retry/backoff policy override (None = `HDIDX_RETRY_POLICY` /
        /// `HDIDX_RETRY_BUDGET` or the fixed default).
        retry: Option<RetryPolicy>,
        /// Per-phase fault-rate percentages in `FaultPhase::ALL` order
        /// (None = 100 % everywhere).
        fault_phase_scale: Option<[u16; 3]>,
        /// Kernel ISA override (None = `HDIDX_SIMD` or auto-detect).
        simd: Option<SimdChoice>,
    },
    /// Run every predictor plus the measured ground truth in one report.
    Compare {
        /// CSV path.
        data: String,
        /// Page size in bytes.
        page_bytes: usize,
        /// Memory budget in points.
        m: usize,
        /// Number of queries.
        queries: usize,
        /// Neighbor count.
        k: usize,
        /// RNG seed.
        seed: u64,
        /// Worker threads (None = available parallelism, 1 = serial).
        threads: Option<usize>,
        /// Fault-injection seed (None = `HDIDX_FAULT_SEED` or no faults).
        fault_seed: Option<u64>,
        /// Fault rate override in ppm (transient; torn/spikes at half).
        fault_ppm: Option<u32>,
        /// Retry/backoff policy override (None = `HDIDX_RETRY_POLICY` /
        /// `HDIDX_RETRY_BUDGET` or the fixed default).
        retry: Option<RetryPolicy>,
        /// Per-phase fault-rate percentages in `FaultPhase::ALL` order
        /// (None = 100 % everywhere).
        fault_phase_scale: Option<[u16; 3]>,
        /// Kernel ISA override (None = `HDIDX_SIMD` or auto-detect).
        simd: Option<SimdChoice>,
    },
    /// Build the index (simulated on-disk) and measure ground truth.
    Measure {
        /// CSV path.
        data: String,
        /// Page size in bytes.
        page_bytes: usize,
        /// Memory budget in points.
        m: usize,
        /// Number of queries.
        queries: usize,
        /// Neighbor count.
        k: usize,
        /// RNG seed.
        seed: u64,
        /// Worker threads (None = available parallelism, 1 = serial).
        threads: Option<usize>,
        /// Fault-injection seed (None = `HDIDX_FAULT_SEED` or no faults).
        fault_seed: Option<u64>,
        /// Fault rate override in ppm (transient; torn/spikes at half).
        fault_ppm: Option<u32>,
        /// Retry/backoff policy override (None = `HDIDX_RETRY_POLICY` /
        /// `HDIDX_RETRY_BUDGET` or the fixed default).
        retry: Option<RetryPolicy>,
        /// Per-phase fault-rate percentages in `FaultPhase::ALL` order
        /// (None = 100 % everywhere).
        fault_phase_scale: Option<[u16; 3]>,
        /// Storage backend the build runs against.
        backend: Backend,
        /// Store directory (file backend only).
        store_dir: Option<String>,
        /// WAL durability mode (file backend only).
        durability: Durability,
        /// Kernel ISA override (None = `HDIDX_SIMD` or auto-detect).
        simd: Option<SimdChoice>,
    },
    /// Serve an open-loop query stream against a built index and report
    /// tail latency.
    Serve {
        /// CSV path.
        data: String,
        /// Page size in bytes.
        page_bytes: usize,
        /// Memory budget in points.
        m: usize,
        /// Mean arrival rate, requests per simulated second.
        rate: f64,
        /// Arrival window length in simulated seconds.
        duration: f64,
        /// Read mix over range/knn/predict.
        mix: MixSpec,
        /// Interarrival model.
        arrivals: ArrivalModel,
        /// Simulated service slots.
        concurrency: usize,
        /// Requests per dispatch batch.
        batch: usize,
        /// Admission backoff budget in seconds (None = shedding disabled).
        admission_budget: Option<f64>,
        /// Sliding-window length of the admission controller.
        admission_window: usize,
        /// Overload-control policy assembled from `--deadline`, `--lanes`,
        /// `--breaker` and `--hedge-ms` (all default off).
        overload: OverloadPolicy,
        /// Serve only this query class (physically filter the stream).
        only: Option<QueryClass>,
        /// Idle-slot scrub slice size in pages (None = maintenance off).
        scrub_slice: Option<u64>,
        /// Number of candidate query balls in the workload pool.
        queries: usize,
        /// Neighbor count for workload radii and k-NN requests.
        k: usize,
        /// RNG seed.
        seed: u64,
        /// Worker threads (None = available parallelism, 1 = serial).
        threads: Option<usize>,
        /// Fault-injection seed (None = `HDIDX_FAULT_SEED` or no faults).
        fault_seed: Option<u64>,
        /// Fault rate override in ppm (transient; torn/spikes at half).
        fault_ppm: Option<u32>,
        /// Retry/backoff policy override (None = `HDIDX_RETRY_POLICY` /
        /// `HDIDX_RETRY_BUDGET` or the fixed default).
        retry: Option<RetryPolicy>,
        /// Per-phase fault-rate percentages in `FaultPhase::ALL` order
        /// (None = 100 % everywhere).
        fault_phase_scale: Option<[u16; 3]>,
        /// Storage backend the build runs against.
        backend: Backend,
        /// Store directory (file backend only).
        store_dir: Option<String>,
        /// WAL durability mode (file backend only).
        durability: Durability,
        /// Kernel ISA override (None = `HDIDX_SIMD` or auto-detect).
        simd: Option<SimdChoice>,
    },
    /// Verify and repair an existing snapshot store offline.
    Scrub {
        /// Store directory (the same path passed as `--store` when the
        /// snapshot was built).
        store_dir: String,
        /// WAL durability mode used when reopening generations.
        durability: Durability,
    },
    /// Generate a named dataset analog as CSV.
    Generate {
        /// Analog name (color64, texture48, texture60, isolet617,
        /// stock360, uniform8d).
        dataset: String,
        /// Cardinality scale in (0, 1].
        scale: f64,
        /// Output CSV path.
        out: String,
    },
    /// Print usage.
    Help,
}

/// Usage text.
pub const USAGE: &str = "\
hdidx — sampling-based index cost prediction (Lang & Singh, SIGMOD 2001)

USAGE:
  hdidx info     --data <csv> [--page-bytes 8192]
  hdidx predict  --data <csv> --m <points>
                 [--predictor resampled|cutoff|basic|uniform|fractal|histogram|distdist]
                 [--queries 500] [--k 21] [--h-upper N] [--zeta F]
                 [--page-bytes 8192] [--seed 42] [--threads N]
                 [--simd auto|scalar|sse2|avx2]
                 [--fault-seed S] [--fault-ppm P] [--fault-phase-scale SPEC]
                 [--retry-policy fixed|exponential|budgeted] [--retry-budget B]
  hdidx measure  --data <csv> --m <points> [--queries 500] [--k 21]
                 [--page-bytes 8192] [--seed 42] [--threads N]
                 [--simd auto|scalar|sse2|avx2]
                 [--backend sim|file] [--store <dir>]
                 [--durability per-batch|every-N|none]
                 [--fault-seed S] [--fault-ppm P] [--fault-phase-scale SPEC]
                 [--retry-policy fixed|exponential|budgeted] [--retry-budget B]
  hdidx compare  --data <csv> --m <points> [--queries 500] [--k 21]
                 [--page-bytes 8192] [--seed 42] [--threads N]
                 [--simd auto|scalar|sse2|avx2]
                 [--fault-seed S] [--fault-ppm P] [--fault-phase-scale SPEC]
                 [--retry-policy fixed|exponential|budgeted] [--retry-budget B]
  hdidx serve    --data <csv> --m <points> [--rate 200] [--duration 10]
                 [--mix range:0.5,knn:0.3,predict:0.2] [--arrivals fixed|bursty]
                 [--concurrency 4] [--batch 8] [--admission-budget S]
                 [--admission-window 64] [--deadline SPEC] [--lanes SPEC]
                 [--breaker fails:window:cooldown[:probes]] [--hedge-ms MS]
                 [--only range|knn|predict] [--scrub-slice PAGES]
                 [--queries 500] [--k 21] [--page-bytes 8192] [--seed 42]
                 [--threads N] [--simd auto|scalar|sse2|avx2] [--smoke]
                 [--backend sim|file] [--store <dir>]
                 [--durability per-batch|every-N|none]
                 [fault/retry flags as above]
  hdidx scrub    --store <dir> [--durability per-batch|every-N|none]
  hdidx generate --dataset <name> [--scale 1.0] --out <csv>

`--backend file` runs the build against the file-backed page store
under `--store <dir>` (required): after the build, the index is
persisted as a new checksummed snapshot generation (`<dir>/index/
gen-XXXXXXXX`), committed by an atomic superblock swap, scrubbed,
fsynced, reopened and verified, and `serve` then serves the loaded
tree. Charged-model accounting is identical to the simulated backend;
the report adds persist/reopen charged-model vs wall-clock seconds.
`--durability` picks the write-ahead-log fsync cadence: `per-batch`
(default, fsync every batch), `every-N` (e.g. `every-8`), or `none`
(checkpoint only). Earlier generations under `--store` are retained
(two most recent) so a scrub can fall back if the newest corrupts;
older ones are garbage-collected after each commit.

`scrub` verifies every page checksum in the current snapshot
generation under `--store <dir>`, repairs corrupt pages from the
write-ahead log where possible, quarantines the rest, and falls back
to the previous retained generation when the current one cannot be
made loadable — demoting the commit pointer so later opens see the
good generation. It prints a one-line report and exits non-zero if no
generation could be loaded.

`serve` builds the index, generates an open-loop request stream on
simulated time (`--rate` requests/s for `--duration` s; `--arrivals
bursty` clumps arrivals without changing the mean rate), executes it in
`--batch`-sized batches over `--concurrency` simulated service slots,
and reports exact nearest-rank p50/p95/p99/max latency plus a digest of
the per-query samples (byte-identical for any --threads).
`--admission-budget S` sheds whole batches while the sliding window of
charged fault-retry backoff exceeds S seconds (`--admission-window N`
sizes that window); the report then includes the shed fraction.
`--smoke` shrinks the defaults to CI scale.

Overload control (every knob defaults off; with all of them off the
run reproduces the policy-free digests bit for bit):

`--deadline SPEC` caps each query's charged service cost: either one
number of seconds for every class, or per-class `range:0.1,knn:inf`
pairs (unnamed classes stay uncapped). A range/knn query over its
deadline is cut off and counted in `deadline cut`; a predict query
becomes disk-priced and answers from cutoff extrapolation over the
prefix it scanned, reported as degraded coverage.

`--lanes SPEC` gives each class its own admission lane: `class:budget`
pairs where the budget bounds the class's mean shadow-priced queue
delay in seconds (`0` closes the lane, `inf` or unnamed protects it).
Low-priority lanes shed before protected ones ever queue: shedding is
computed from a no-shed shadow pass, so decisions are identical at any
thread count and monotone in the budget.

`--breaker fails:window:cooldown[:probes]` trips a circuit breaker
when `fails` disk-query failures land within `window` charged seconds;
while open, disk-backed queries fail fast (charging nothing) until
`cooldown` elapses, then `probes` successes re-close it. Predicts keep
serving from memory. `--hedge-ms MS` re-issues a faulted replay whose
charged cost exceeds MS milliseconds against the snapshot generation's
fault stream, adopting the earlier completion but charging both.

`--only CLASS` physically filters the request stream to one class
(request ids keep their arrival numbering, so a protected lane's
digest can be compared against a stream that never offered the other
classes). `--scrub-slice PAGES` enables idle-slot maintenance: scrub
slices of that many pages run in the slot algebra's idle gaps and
drive the healthy/degraded/read-only health state shown in the report
(degraded halves the admission budget; read-only refuses disk-backed
classes).

`--threads 1` forces serial execution; omitting --threads uses the
HDIDX_THREADS environment variable or the machine's available
parallelism. Results are identical for any thread count.

`--simd` pins the geometry-kernel ISA: `scalar`, `sse2`, `avx2`, or
`auto` (detect the best supported, rejecting nothing). The flag
overrides the HDIDX_SIMD environment variable; omitting both
auto-detects. Every ISA is byte-identical — counts, distances, and
digests never change with the lane width — so the flag exists for
perf comparison and for forcing the portable path, not for results.
A fixed ISA the CPU does not support is rejected at startup.

`--fault-seed S` injects deterministic I/O faults (transient failures,
torn reads, latency spikes) into the simulated disk; `--fault-ppm P`
scales the transient rate in parts per million (default 2000; torn and
spikes run at half that). Omitting --fault-seed falls back to the
HDIDX_FAULT_SEED / HDIDX_FAULT_PPM environment variables; without
either, no faults are injected. The same fault seed reproduces the
identical fault trace, retry counts, and degraded output.
HDIDX_FAULT_BURST_PPM additionally enables correlated fault bursts over
seeded bad page regions at the given per-attempt rate.

`--fault-phase-scale` rescales the fault rates per pipeline phase, as a
comma-separated list of `phase:pct` pairs over the phases `build`,
`query`, and `predict` (unnamed phases stay at 100). For example
`--fault-phase-scale build:5,query:5,predict:300` concentrates fault
pressure on the predictors' sampled I/O while the index build and the
ground-truth measurement run nearly clean — the setting that makes
degraded predictor rows observable in `compare` end to end.

`--retry-policy` paces retries after failed attempts: `fixed` retries
immediately (default), `exponential` charges 2^attempt (+ deterministic
jitter) seek-equivalents of backoff into the I/O bill, and `budgeted`
follows the exponential schedule but gives up once a per-access backoff
budget (`--retry-budget`, default 64 seek-equivalents) would be
overdrawn. `--retry-budget` alone implies the budgeted policy. Explicit
flags override the HDIDX_RETRY_POLICY / HDIDX_RETRY_BUDGET environment
variables, which override the fixed default.
";

struct Opts {
    pairs: Vec<(String, String)>,
    flags: Vec<String>,
}

impl Opts {
    /// Parses `--key value` pairs; any key listed in `boolean` is a bare
    /// flag consuming no value (e.g. `--smoke`).
    fn parse(rest: &[String], boolean: &[&str]) -> Result<Opts, String> {
        let mut pairs = Vec::new();
        let mut flags = Vec::new();
        let mut i = 0;
        while i < rest.len() {
            let key = rest[i]
                .strip_prefix("--")
                .ok_or_else(|| format!("expected an option, got `{}`", rest[i]))?;
            if boolean.contains(&key) {
                flags.push(key.to_string());
                i += 1;
                continue;
            }
            let value = rest
                .get(i + 1)
                .ok_or_else(|| format!("option --{key} requires a value"))?;
            pairs.push((key.to_string(), value.clone()));
            i += 2;
        }
        Ok(Opts { pairs, flags })
    }

    fn has_flag(&self, key: &str) -> bool {
        self.flags.iter().any(|k| k == key)
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.pairs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn required(&self, key: &str) -> Result<String, String> {
        self.get(key)
            .map(str::to_string)
            .ok_or_else(|| format!("missing required option --{key}"))
    }

    fn parse_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("option --{key}: cannot parse `{v}`")),
        }
    }

    fn parse_opt<T: std::str::FromStr>(&self, key: &str) -> Result<Option<T>, String> {
        match self.get(key) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| format!("option --{key}: cannot parse `{v}`")),
        }
    }

    fn reject_unknown(&self, known: &[&str]) -> Result<(), String> {
        for k in self.pairs.iter().map(|(k, _)| k).chain(&self.flags) {
            if !known.contains(&k.as_str()) {
                return Err(format!("unknown option --{k}"));
            }
        }
        Ok(())
    }
}

fn parse_retry(opts: &Opts) -> Result<Option<RetryPolicy>, String> {
    let budget: Option<u32> = opts.parse_opt("retry-budget")?;
    match opts.get("retry-policy") {
        Some(name) => RetryPolicy::parse(name, budget)
            .map(Some)
            .map_err(|e| format!("option --retry-policy: {e}")),
        // A budget alone implies the budgeted policy (mirrors the
        // HDIDX_RETRY_BUDGET environment variable).
        None => Ok(budget.map(|budget_seeks| RetryPolicy::Budgeted { budget_seeks })),
    }
}

fn parse_phase_scale(opts: &Opts) -> Result<Option<[u16; 3]>, String> {
    let Some(spec) = opts.get("fault-phase-scale") else {
        return Ok(None);
    };
    let mut scale = [100u16; 3];
    for part in spec.split(',') {
        let (name, pct) = part.split_once(':').ok_or_else(|| {
            format!("option --fault-phase-scale: expected phase:pct, got `{part}`")
        })?;
        let idx = FaultPhase::ALL
            .iter()
            .position(|p| p.as_str() == name)
            .ok_or_else(|| {
                format!(
                    "option --fault-phase-scale: unknown phase `{name}` (expected {})",
                    FaultPhase::ALL.map(|p| p.as_str()).join(", ")
                )
            })?;
        scale[idx] = pct
            .parse()
            .map_err(|_| format!("option --fault-phase-scale: cannot parse percentage `{pct}`"))?;
    }
    Ok(Some(scale))
}

/// Parses `--backend` / `--store` / `--durability` as a unit: the file
/// backend requires a store directory; the store and durability flags
/// are meaningless on the simulated backend and rejected there.
fn parse_backend(opts: &Opts) -> Result<(Backend, Option<String>, Durability), String> {
    let backend = match opts.get("backend") {
        None | Some("sim") => Backend::Sim,
        Some("file") => Backend::File,
        Some(other) => {
            return Err(format!(
                "option --backend: unknown backend `{other}` (expected sim or file)"
            ))
        }
    };
    let store_dir = opts.get("store").map(str::to_string);
    let durability = match opts.get("durability") {
        None => Durability::PerBatch,
        Some(s) => Durability::parse(s).map_err(|e| format!("option --durability: {e}"))?,
    };
    match backend {
        Backend::File if store_dir.is_none() => {
            Err("option --backend file requires --store <dir>".to_string())
        }
        Backend::Sim if store_dir.is_some() => {
            Err("option --store requires --backend file".to_string())
        }
        Backend::Sim if opts.get("durability").is_some() => {
            Err("option --durability requires --backend file".to_string())
        }
        _ => Ok((backend, store_dir, durability)),
    }
}

fn parse_simd(opts: &Opts) -> Result<Option<SimdChoice>, String> {
    match opts.get("simd") {
        None => Ok(None),
        Some(s) => SimdChoice::parse(s)
            .map(Some)
            .map_err(|e| format!("option --simd: {e}")),
    }
}

fn parse_threads(opts: &Opts) -> Result<Option<usize>, String> {
    let threads: Option<usize> = opts.parse_opt("threads")?;
    if threads == Some(0) {
        return Err("option --threads: must be at least 1".to_string());
    }
    Ok(threads)
}

/// Parses a `f64` option that must be positive and finite (rates,
/// durations, budgets — a zero or NaN rate would hang or poison the run).
fn parse_positive_or(opts: &Opts, key: &str, default: f64) -> Result<f64, String> {
    let v: f64 = opts.parse_or(key, default)?;
    if !v.is_finite() || v <= 0.0 {
        return Err(format!(
            "option --{key}: must be positive and finite, got `{v}`"
        ));
    }
    Ok(v)
}

impl Cli {
    /// Parses `argv` (without the program name).
    ///
    /// # Errors
    ///
    /// Returns a usage-style message for unknown commands/options or
    /// malformed values.
    pub fn parse(argv: &[String]) -> Result<Cli, String> {
        let Some(cmd) = argv.first() else {
            return Ok(Cli {
                command: Command::Help,
            });
        };
        let opts = Opts::parse(&argv[1..], &["smoke"])?;
        let command = match cmd.as_str() {
            "help" | "--help" | "-h" => Command::Help,
            "info" => {
                opts.reject_unknown(&["data", "page-bytes"])?;
                Command::Info {
                    data: opts.required("data")?,
                    page_bytes: opts.parse_or("page-bytes", 8192usize)?,
                }
            }
            "predict" => {
                opts.reject_unknown(&[
                    "data",
                    "page-bytes",
                    "m",
                    "predictor",
                    "queries",
                    "k",
                    "h-upper",
                    "zeta",
                    "seed",
                    "threads",
                    "fault-seed",
                    "fault-ppm",
                    "fault-phase-scale",
                    "retry-policy",
                    "retry-budget",
                    "simd",
                ])?;
                let predictor = opts.get("predictor").unwrap_or("resampled").to_string();
                if !PREDICTOR_NAMES.contains(&predictor.as_str()) {
                    return Err(format!(
                        "unknown predictor `{predictor}` (expected one of {})",
                        PREDICTOR_NAMES.join(", ")
                    ));
                }
                Command::Predict {
                    data: opts.required("data")?,
                    page_bytes: opts.parse_or("page-bytes", 8192usize)?,
                    m: opts
                        .parse_opt("m")?
                        .ok_or("missing required option --m".to_string())?,
                    predictor,
                    queries: opts.parse_or("queries", 500usize)?,
                    k: opts.parse_or("k", 21usize)?,
                    h_upper: opts.parse_opt("h-upper")?,
                    zeta: opts.parse_opt("zeta")?,
                    seed: opts.parse_or("seed", 42u64)?,
                    threads: parse_threads(&opts)?,
                    fault_seed: opts.parse_opt("fault-seed")?,
                    fault_ppm: opts.parse_opt("fault-ppm")?,
                    retry: parse_retry(&opts)?,
                    fault_phase_scale: parse_phase_scale(&opts)?,
                    simd: parse_simd(&opts)?,
                }
            }
            "compare" => {
                opts.reject_unknown(&[
                    "data",
                    "page-bytes",
                    "m",
                    "queries",
                    "k",
                    "seed",
                    "threads",
                    "fault-seed",
                    "fault-ppm",
                    "fault-phase-scale",
                    "retry-policy",
                    "retry-budget",
                    "simd",
                ])?;
                Command::Compare {
                    data: opts.required("data")?,
                    page_bytes: opts.parse_or("page-bytes", 8192usize)?,
                    m: opts
                        .parse_opt("m")?
                        .ok_or("missing required option --m".to_string())?,
                    queries: opts.parse_or("queries", 500usize)?,
                    k: opts.parse_or("k", 21usize)?,
                    seed: opts.parse_or("seed", 42u64)?,
                    threads: parse_threads(&opts)?,
                    fault_seed: opts.parse_opt("fault-seed")?,
                    fault_ppm: opts.parse_opt("fault-ppm")?,
                    retry: parse_retry(&opts)?,
                    fault_phase_scale: parse_phase_scale(&opts)?,
                    simd: parse_simd(&opts)?,
                }
            }
            "measure" => {
                opts.reject_unknown(&[
                    "data",
                    "page-bytes",
                    "m",
                    "queries",
                    "k",
                    "seed",
                    "threads",
                    "fault-seed",
                    "fault-ppm",
                    "fault-phase-scale",
                    "retry-policy",
                    "retry-budget",
                    "backend",
                    "store",
                    "durability",
                    "simd",
                ])?;
                let (backend, store_dir, durability) = parse_backend(&opts)?;
                Command::Measure {
                    data: opts.required("data")?,
                    page_bytes: opts.parse_or("page-bytes", 8192usize)?,
                    m: opts
                        .parse_opt("m")?
                        .ok_or("missing required option --m".to_string())?,
                    queries: opts.parse_or("queries", 500usize)?,
                    k: opts.parse_or("k", 21usize)?,
                    seed: opts.parse_or("seed", 42u64)?,
                    threads: parse_threads(&opts)?,
                    fault_seed: opts.parse_opt("fault-seed")?,
                    fault_ppm: opts.parse_opt("fault-ppm")?,
                    retry: parse_retry(&opts)?,
                    fault_phase_scale: parse_phase_scale(&opts)?,
                    backend,
                    store_dir,
                    durability,
                    simd: parse_simd(&opts)?,
                }
            }
            "serve" => {
                opts.reject_unknown(&[
                    "data",
                    "page-bytes",
                    "m",
                    "rate",
                    "duration",
                    "mix",
                    "arrivals",
                    "concurrency",
                    "batch",
                    "admission-budget",
                    "admission-window",
                    "deadline",
                    "lanes",
                    "breaker",
                    "hedge-ms",
                    "only",
                    "scrub-slice",
                    "queries",
                    "k",
                    "seed",
                    "threads",
                    "fault-seed",
                    "fault-ppm",
                    "fault-phase-scale",
                    "retry-policy",
                    "retry-budget",
                    "smoke",
                    "backend",
                    "store",
                    "durability",
                    "simd",
                ])?;
                let (backend, store_dir, durability) = parse_backend(&opts)?;
                // --smoke shrinks the open-loop window to CI scale while
                // keeping every knob overridable.
                let smoke = opts.has_flag("smoke");
                let mix = match opts.get("mix") {
                    None => MixSpec::default(),
                    Some(spec) => MixSpec::parse(spec).map_err(|e| format!("option --mix: {e}"))?,
                };
                let arrivals = match opts.get("arrivals") {
                    None => ArrivalModel::Fixed,
                    Some(name) => {
                        ArrivalModel::parse(name).map_err(|e| format!("option --arrivals: {e}"))?
                    }
                };
                let concurrency: usize = opts.parse_or("concurrency", 4usize)?;
                if concurrency == 0 {
                    return Err("option --concurrency: must be at least 1".to_string());
                }
                let batch: usize = opts.parse_or("batch", 8usize)?;
                if batch == 0 {
                    return Err("option --batch: must be at least 1".to_string());
                }
                let admission_budget = match opts.get("admission-budget") {
                    None => None,
                    Some(_) => Some(parse_positive_or(&opts, "admission-budget", 1.0)?),
                };
                let admission_window: usize =
                    opts.parse_or("admission-window", AdmissionControl::DEFAULT_WINDOW)?;
                if admission_window == 0 {
                    return Err("option --admission-window: must be at least 1".to_string());
                }
                let deadlines = match opts.get("deadline") {
                    None => Deadlines::none(),
                    Some(spec) => {
                        Deadlines::parse(spec).map_err(|e| format!("option --deadline: {e}"))?
                    }
                };
                let lanes = match opts.get("lanes") {
                    None => None,
                    Some(spec) => {
                        Some(LanePolicy::parse(spec).map_err(|e| format!("option --lanes: {e}"))?)
                    }
                };
                let breaker = match opts.get("breaker") {
                    None => None,
                    Some(spec) => Some(
                        BreakerConfig::parse(spec).map_err(|e| format!("option --breaker: {e}"))?,
                    ),
                };
                let hedge_s = match opts.get("hedge-ms") {
                    None => f64::INFINITY,
                    Some(_) => parse_positive_or(&opts, "hedge-ms", 50.0)? / 1000.0,
                };
                let overload = OverloadPolicy {
                    deadlines,
                    lanes,
                    breaker,
                    hedge_s,
                };
                overload.validate().map_err(|e| e.to_string())?;
                let only = match opts.get("only") {
                    None => None,
                    Some(name) => {
                        Some(QueryClass::parse(name).map_err(|e| format!("option --only: {e}"))?)
                    }
                };
                let scrub_slice: Option<u64> = opts.parse_opt("scrub-slice")?;
                if scrub_slice == Some(0) {
                    return Err("option --scrub-slice: must be at least 1 page".to_string());
                }
                Command::Serve {
                    data: opts.required("data")?,
                    page_bytes: opts.parse_or("page-bytes", 8192usize)?,
                    m: opts
                        .parse_opt("m")?
                        .ok_or("missing required option --m".to_string())?,
                    rate: parse_positive_or(&opts, "rate", if smoke { 80.0 } else { 200.0 })?,
                    duration: parse_positive_or(&opts, "duration", if smoke { 1.0 } else { 10.0 })?,
                    mix,
                    arrivals,
                    concurrency,
                    batch,
                    admission_budget,
                    admission_window,
                    overload,
                    only,
                    scrub_slice,
                    queries: opts.parse_or("queries", if smoke { 24usize } else { 500 })?,
                    k: opts.parse_or("k", if smoke { 5usize } else { 21 })?,
                    seed: opts.parse_or("seed", 42u64)?,
                    threads: parse_threads(&opts)?,
                    fault_seed: opts.parse_opt("fault-seed")?,
                    fault_ppm: opts.parse_opt("fault-ppm")?,
                    retry: parse_retry(&opts)?,
                    fault_phase_scale: parse_phase_scale(&opts)?,
                    backend,
                    store_dir,
                    durability,
                    simd: parse_simd(&opts)?,
                }
            }
            "scrub" => {
                opts.reject_unknown(&["store", "durability"])?;
                let durability = match opts.get("durability") {
                    None => Durability::PerBatch,
                    Some(s) => {
                        Durability::parse(s).map_err(|e| format!("option --durability: {e}"))?
                    }
                };
                Command::Scrub {
                    store_dir: opts.required("store")?,
                    durability,
                }
            }
            "generate" => {
                opts.reject_unknown(&["dataset", "scale", "out"])?;
                Command::Generate {
                    dataset: opts.required("dataset")?,
                    scale: opts.parse_or("scale", 1.0f64)?,
                    out: opts.required("out")?,
                }
            }
            other => return Err(format!("unknown command `{other}`\n{USAGE}")),
        };
        Ok(Cli { command })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn parses_predict_with_defaults() {
        let cli = Cli::parse(&argv("predict --data a.csv --m 1000")).unwrap();
        match cli.command {
            Command::Predict {
                data,
                page_bytes,
                m,
                predictor,
                queries,
                k,
                h_upper,
                zeta,
                seed,
                threads,
                fault_seed,
                fault_ppm,
                retry,
                fault_phase_scale,
                simd,
            } => {
                assert_eq!(data, "a.csv");
                assert_eq!(page_bytes, 8192);
                assert_eq!(m, 1000);
                assert_eq!(predictor, "resampled");
                assert_eq!(queries, 500);
                assert_eq!(k, 21);
                assert_eq!(h_upper, None);
                assert_eq!(zeta, None);
                assert_eq!(seed, 42);
                assert_eq!(threads, None);
                assert_eq!(fault_seed, None);
                assert_eq!(fault_ppm, None);
                assert_eq!(retry, None);
                assert_eq!(fault_phase_scale, None);
                assert_eq!(simd, None);
            }
            other => panic!("wrong command: {other:?}"),
        }
    }

    #[test]
    fn parses_simd_flag() {
        let cli = Cli::parse(&argv("predict --data a.csv --m 10 --simd scalar")).unwrap();
        match cli.command {
            Command::Predict { simd, .. } => {
                assert_eq!(simd, Some(SimdChoice::Fixed(hdidx_core::Isa::Scalar)));
            }
            other => panic!("wrong command: {other:?}"),
        }
        let cli = Cli::parse(&argv("serve --data a.csv --m 10 --simd auto")).unwrap();
        match cli.command {
            Command::Serve { simd, .. } => assert_eq!(simd, Some(SimdChoice::Auto)),
            other => panic!("wrong command: {other:?}"),
        }
        let err = Cli::parse(&argv("measure --data a.csv --m 10 --simd avx512")).unwrap_err();
        assert!(err.contains("option --simd"), "{err}");
        // info/generate/scrub take no --simd.
        assert!(Cli::parse(&argv("info --data a.csv --simd auto")).is_err());
    }

    #[test]
    fn parses_overrides() {
        let cli = Cli::parse(&argv(
            "predict --data a.csv --m 500 --predictor basic --zeta 0.3 --queries 10 --k 5 \
             --seed 7 --threads 2",
        ))
        .unwrap();
        match cli.command {
            Command::Predict {
                predictor,
                zeta,
                queries,
                k,
                seed,
                threads,
                ..
            } => {
                assert_eq!(predictor, "basic");
                assert_eq!(zeta, Some(0.3));
                assert_eq!(queries, 10);
                assert_eq!(k, 5);
                assert_eq!(seed, 7);
                assert_eq!(threads, Some(2));
            }
            other => panic!("wrong command: {other:?}"),
        }
    }

    #[test]
    fn every_registry_name_parses() {
        for &name in PREDICTOR_NAMES {
            let cli = Cli::parse(&argv(&format!(
                "predict --data a.csv --m 10 --predictor {name}"
            )))
            .unwrap();
            match cli.command {
                Command::Predict { predictor, .. } => assert_eq!(predictor, name),
                other => panic!("wrong command: {other:?}"),
            }
        }
    }

    #[test]
    fn parses_fault_flags() {
        let cli = Cli::parse(&argv(
            "measure --data d.csv --m 100 --fault-seed 7 --fault-ppm 20000",
        ))
        .unwrap();
        match cli.command {
            Command::Measure {
                fault_seed,
                fault_ppm,
                ..
            } => {
                assert_eq!(fault_seed, Some(7));
                assert_eq!(fault_ppm, Some(20_000));
            }
            other => panic!("wrong command: {other:?}"),
        }
        assert!(Cli::parse(&argv("predict --data a.csv --m 10 --fault-seed x")).is_err());
        assert!(Cli::parse(&argv("compare --data a.csv --m 10 --fault-ppm -1")).is_err());
        // info/generate take no fault flags.
        assert!(Cli::parse(&argv("info --data a.csv --fault-seed 1")).is_err());
    }

    #[test]
    fn parses_retry_flags() {
        let cli = Cli::parse(&argv(
            "measure --data d.csv --m 100 --retry-policy exponential",
        ))
        .unwrap();
        match cli.command {
            Command::Measure { retry, .. } => assert_eq!(retry, Some(RetryPolicy::Exponential)),
            other => panic!("wrong command: {other:?}"),
        }
        // A budget alone implies the budgeted policy; alongside a policy
        // name it configures that policy.
        let cli = Cli::parse(&argv("compare --data d.csv --m 100 --retry-budget 9")).unwrap();
        match cli.command {
            Command::Compare { retry, .. } => {
                assert_eq!(retry, Some(RetryPolicy::Budgeted { budget_seeks: 9 }));
            }
            other => panic!("wrong command: {other:?}"),
        }
        let cli = Cli::parse(&argv(
            "predict --data d.csv --m 100 --retry-policy budgeted --retry-budget 17",
        ))
        .unwrap();
        match cli.command {
            Command::Predict { retry, .. } => {
                assert_eq!(retry, Some(RetryPolicy::Budgeted { budget_seeks: 17 }));
            }
            other => panic!("wrong command: {other:?}"),
        }
        assert!(Cli::parse(&argv("predict --data d.csv --m 1 --retry-policy bogus")).is_err());
        assert!(Cli::parse(&argv("predict --data d.csv --m 1 --retry-budget x")).is_err());
        // info/generate take no retry flags.
        assert!(Cli::parse(&argv("info --data d.csv --retry-policy fixed")).is_err());
    }

    #[test]
    fn parses_phase_scale() {
        // Named phases are set, unnamed phases default to 100.
        let cli = Cli::parse(&argv(
            "compare --data d.csv --m 100 --fault-phase-scale build:5,predict:300",
        ))
        .unwrap();
        match cli.command {
            Command::Compare {
                fault_phase_scale, ..
            } => assert_eq!(fault_phase_scale, Some([5, 100, 300])),
            other => panic!("wrong command: {other:?}"),
        }
        let cli = Cli::parse(&argv(
            "predict --data d.csv --m 100 --fault-phase-scale query:0",
        ))
        .unwrap();
        match cli.command {
            Command::Predict {
                fault_phase_scale, ..
            } => assert_eq!(fault_phase_scale, Some([100, 0, 100])),
            other => panic!("wrong command: {other:?}"),
        }
        let bad = [
            "measure --data d.csv --m 1 --fault-phase-scale flush:50",
            "measure --data d.csv --m 1 --fault-phase-scale build",
            "measure --data d.csv --m 1 --fault-phase-scale build:lots",
            // info/generate take no phase-scale flag.
            "info --data d.csv --fault-phase-scale build:50",
        ];
        for args in bad {
            assert!(Cli::parse(&argv(args)).is_err(), "should reject: {args}");
        }
    }

    #[test]
    fn parses_backend_flags() {
        // Default: the simulated backend, no store directory.
        let cli = Cli::parse(&argv("measure --data d.csv --m 100")).unwrap();
        match cli.command {
            Command::Measure {
                backend,
                store_dir,
                durability,
                ..
            } => {
                assert_eq!(backend, Backend::Sim);
                assert_eq!(store_dir, None);
                assert_eq!(durability, Durability::PerBatch);
            }
            other => panic!("wrong command: {other:?}"),
        }
        let cli = Cli::parse(&argv(
            "measure --data d.csv --m 100 --backend file --store /tmp/st --durability every-8",
        ))
        .unwrap();
        match cli.command {
            Command::Measure {
                backend,
                store_dir,
                durability,
                ..
            } => {
                assert_eq!(backend, Backend::File);
                assert_eq!(store_dir.as_deref(), Some("/tmp/st"));
                assert_eq!(durability, Durability::EveryN(8));
            }
            other => panic!("wrong command: {other:?}"),
        }
        let cli = Cli::parse(&argv(
            "serve --data d.csv --m 100 --smoke --backend file --store s --durability none",
        ))
        .unwrap();
        match cli.command {
            Command::Serve {
                backend,
                durability,
                ..
            } => {
                assert_eq!(backend, Backend::File);
                assert_eq!(durability, Durability::None);
            }
            other => panic!("wrong command: {other:?}"),
        }
        let bad = [
            // The file backend needs a store; sim rejects store/durability.
            "measure --data d.csv --m 10 --backend file",
            "measure --data d.csv --m 10 --store /tmp/x",
            "measure --data d.csv --m 10 --durability none",
            "measure --data d.csv --m 10 --backend ramdisk --store s",
            "serve --data d.csv --m 10 --backend file",
            "measure --data d.csv --m 10 --backend file --store s --durability every-0",
            "measure --data d.csv --m 10 --backend file --store s --durability fsync",
            // predict/compare/info take no backend flags.
            "predict --data d.csv --m 10 --backend file --store s",
            "compare --data d.csv --m 10 --backend sim",
            "info --data d.csv --store s",
        ];
        for args in bad {
            assert!(Cli::parse(&argv(args)).is_err(), "should reject: {args}");
        }
    }

    #[test]
    fn parses_scrub() {
        let cli = Cli::parse(&argv("scrub --store /tmp/st")).unwrap();
        assert_eq!(
            cli.command,
            Command::Scrub {
                store_dir: "/tmp/st".into(),
                durability: Durability::PerBatch,
            }
        );
        let cli = Cli::parse(&argv("scrub --store s --durability every-4")).unwrap();
        assert_eq!(
            cli.command,
            Command::Scrub {
                store_dir: "s".into(),
                durability: Durability::EveryN(4),
            }
        );
        let bad = [
            "scrub",                              // --store is required
            "scrub --durability none",            // still required
            "scrub --store s --durability fsync", // unknown mode
            "scrub --store s --backend file",     // no backend flag here
            "scrub --store s --data d.csv",       // no data flag either
        ];
        for args in bad {
            assert!(Cli::parse(&argv(args)).is_err(), "should reject: {args}");
        }
    }

    #[test]
    fn rejects_bad_input() {
        assert!(Cli::parse(&argv("predict --data a.csv")).is_err()); // no --m
        assert!(Cli::parse(&argv("predict --m 10")).is_err()); // no --data
        assert!(Cli::parse(&argv("predict --data a.csv --m ten")).is_err());
        assert!(Cli::parse(&argv("predict --data a.csv --m 10 --predictor x")).is_err());
        assert!(Cli::parse(&argv("predict --data a.csv --m 10 --bogus 1")).is_err());
        assert!(Cli::parse(&argv("predict --data a.csv --m 10 --threads 0")).is_err());
        assert!(Cli::parse(&argv("measure --data a.csv --m 10 --threads zero")).is_err());
        assert!(Cli::parse(&argv("frobnicate")).is_err());
        assert!(Cli::parse(&argv("info --data a.csv extra")).is_err());
    }

    #[test]
    fn parses_serve_with_defaults_and_smoke() {
        let cli = Cli::parse(&argv("serve --data a.csv --m 400")).unwrap();
        match cli.command {
            Command::Serve {
                data,
                rate,
                duration,
                mix,
                arrivals,
                concurrency,
                batch,
                admission_budget,
                queries,
                k,
                seed,
                ..
            } => {
                assert_eq!(data, "a.csv");
                assert_eq!(rate, 200.0);
                assert_eq!(duration, 10.0);
                assert_eq!(mix, MixSpec::default());
                assert_eq!(arrivals, ArrivalModel::Fixed);
                assert_eq!(concurrency, 4);
                assert_eq!(batch, 8);
                assert_eq!(admission_budget, None);
                assert_eq!(queries, 500);
                assert_eq!(k, 21);
                assert_eq!(seed, 42);
            }
            other => panic!("wrong command: {other:?}"),
        }
        // --smoke is a bare flag (no value) shrinking the defaults but
        // keeping explicit overrides.
        let cli = Cli::parse(&argv("serve --data a.csv --m 400 --smoke --k 3")).unwrap();
        match cli.command {
            Command::Serve {
                rate,
                duration,
                queries,
                k,
                ..
            } => {
                assert_eq!(rate, 80.0);
                assert_eq!(duration, 1.0);
                assert_eq!(queries, 24);
                assert_eq!(k, 3);
            }
            other => panic!("wrong command: {other:?}"),
        }
        let cli = Cli::parse(&argv(
            "serve --data a.csv --m 400 --rate 50 --duration 2.5 --arrivals bursty \
             --mix range:1.0 --concurrency 2 --batch 16 --admission-budget 0.25",
        ))
        .unwrap();
        match cli.command {
            Command::Serve {
                rate,
                duration,
                mix,
                arrivals,
                concurrency,
                batch,
                admission_budget,
                ..
            } => {
                assert_eq!(rate, 50.0);
                assert_eq!(duration, 2.5);
                assert_eq!(mix.range, 1.0);
                assert_eq!(arrivals, ArrivalModel::Bursty);
                assert_eq!(concurrency, 2);
                assert_eq!(batch, 16);
                assert_eq!(admission_budget, Some(0.25));
            }
            other => panic!("wrong command: {other:?}"),
        }
    }

    #[test]
    fn parses_serve_overload_flags() {
        let cli = Cli::parse(&argv(
            "serve --data a.csv --m 400 --deadline range:0.1,knn:0.2 \
             --lanes predict:0,knn:0.5 --breaker 3:0.5:1:2 --hedge-ms 50 \
             --only range --admission-window 16 --scrub-slice 8",
        ))
        .unwrap();
        match cli.command {
            Command::Serve {
                admission_window,
                overload,
                only,
                scrub_slice,
                ..
            } => {
                assert_eq!(admission_window, 16);
                assert_eq!(overload.deadlines.get(QueryClass::Range), 0.1);
                assert_eq!(overload.deadlines.get(QueryClass::Knn), 0.2);
                assert!(overload.deadlines.get(QueryClass::Predict).is_infinite());
                let lanes = overload.lanes.unwrap();
                assert_eq!(lanes.get(QueryClass::Predict), 0.0);
                assert_eq!(lanes.get(QueryClass::Knn), 0.5);
                assert!(lanes.get(QueryClass::Range).is_infinite());
                let breaker = overload.breaker.unwrap();
                assert_eq!(breaker.failure_threshold, 3);
                assert_eq!(breaker.probes, 2);
                assert!((overload.hedge_s - 0.05).abs() < 1e-12);
                assert_eq!(only, Some(QueryClass::Range));
                assert_eq!(scrub_slice, Some(8));
            }
            other => panic!("wrong command: {other:?}"),
        }
        // Defaults: every knob off.
        let cli = Cli::parse(&argv("serve --data a.csv --m 400")).unwrap();
        match cli.command {
            Command::Serve {
                admission_window,
                overload,
                only,
                scrub_slice,
                ..
            } => {
                assert_eq!(admission_window, AdmissionControl::DEFAULT_WINDOW);
                assert!(overload.is_noop());
                assert_eq!(only, None);
                assert_eq!(scrub_slice, None);
            }
            other => panic!("wrong command: {other:?}"),
        }
        // A bare number deadlines every class; `inf` spells protection.
        let cli = Cli::parse(&argv("serve --data a.csv --m 400 --deadline 0.25")).unwrap();
        match cli.command {
            Command::Serve { overload, .. } => {
                for c in QueryClass::ALL {
                    assert_eq!(overload.deadlines.get(c), 0.25);
                }
            }
            other => panic!("wrong command: {other:?}"),
        }
        let bad = [
            "serve --data a.csv --m 10 --deadline 0",
            "serve --data a.csv --m 10 --deadline scan:1",
            "serve --data a.csv --m 10 --lanes range:-1",
            "serve --data a.csv --m 10 --breaker 0:0.5:1",
            "serve --data a.csv --m 10 --breaker 3:0.5",
            "serve --data a.csv --m 10 --hedge-ms 0",
            "serve --data a.csv --m 10 --hedge-ms -5",
            "serve --data a.csv --m 10 --only scan",
            "serve --data a.csv --m 10 --admission-window 0",
            "serve --data a.csv --m 10 --scrub-slice 0",
            // Overload flags are serve-only.
            "measure --data a.csv --m 10 --deadline 0.1",
            "predict --data a.csv --m 10 --lanes range:1",
        ];
        for args in bad {
            assert!(Cli::parse(&argv(args)).is_err(), "should reject: {args}");
        }
    }

    #[test]
    fn serve_rejects_invalid_rate_mix_and_knobs() {
        let bad = [
            // Zero/negative/non-finite rate and duration.
            "serve --data a.csv --m 10 --rate 0",
            "serve --data a.csv --m 10 --rate -5",
            "serve --data a.csv --m 10 --rate nan",
            "serve --data a.csv --m 10 --rate inf",
            "serve --data a.csv --m 10 --duration 0",
            "serve --data a.csv --m 10 --duration -1",
            // Malformed mixes: bad shape, unknown class, not summing to 1.
            "serve --data a.csv --m 10 --mix range",
            "serve --data a.csv --m 10 --mix scan:1.0",
            "serve --data a.csv --m 10 --mix range:0.5,knn:0.2",
            "serve --data a.csv --m 10 --mix range:2.0,knn:-1.0",
            // Degenerate serving knobs.
            "serve --data a.csv --m 10 --concurrency 0",
            "serve --data a.csv --m 10 --batch 0",
            "serve --data a.csv --m 10 --admission-budget 0",
            "serve --data a.csv --m 10 --threads 0",
            "serve --data a.csv --m 10 --arrivals sinusoidal",
            // Required options and unknown flags still enforced.
            "serve --m 10",
            "serve --data a.csv",
            "serve --data a.csv --m 10 --bogus 1",
            // --smoke is serve-only.
            "predict --data a.csv --m 10 --smoke",
            "info --data a.csv --smoke",
        ];
        for args in bad {
            assert!(Cli::parse(&argv(args)).is_err(), "should reject: {args}");
        }
        // The mix error carries the field-oriented message.
        let e = Cli::parse(&argv("serve --data a.csv --m 10 --mix range:0.5,knn")).unwrap_err();
        assert!(e.contains("option --mix"), "{e}");
        assert!(e.contains("field 2"), "{e}");
        let e = Cli::parse(&argv("serve --data a.csv --m 10 --rate 0")).unwrap_err();
        assert!(e.contains("option --rate"), "{e}");
    }

    #[test]
    fn empty_and_help() {
        assert_eq!(Cli::parse(&[]).unwrap().command, Command::Help);
        assert_eq!(Cli::parse(&argv("help")).unwrap().command, Command::Help);
        assert_eq!(Cli::parse(&argv("--help")).unwrap().command, Command::Help);
    }

    #[test]
    fn parses_generate_and_measure() {
        let cli = Cli::parse(&argv(
            "generate --dataset texture60 --scale 0.1 --out o.csv",
        ))
        .unwrap();
        assert_eq!(
            cli.command,
            Command::Generate {
                dataset: "texture60".into(),
                scale: 0.1,
                out: "o.csv".into()
            }
        );
        let cli = Cli::parse(&argv("measure --data d.csv --m 100")).unwrap();
        match cli.command {
            Command::Measure { m, queries, .. } => {
                assert_eq!(m, 100);
                assert_eq!(queries, 500);
            }
            other => panic!("wrong command: {other:?}"),
        }
    }
}
