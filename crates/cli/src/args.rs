//! Hand-rolled argument parsing (no external CLI dependency).
//!
//! Flag conventions, shared by every data command: `--seed` (RNG seed),
//! `--m` (memory budget in points), `--h-upper` (upper-tree height),
//! `--threads` (worker threads; 1 forces serial, absent = available
//! parallelism / `HDIDX_THREADS`), `--predictor` (a name from the
//! `hdidx_baselines::PREDICTOR_NAMES` registry).

use hdidx_baselines::PREDICTOR_NAMES;
use hdidx_faults::{FaultPhase, RetryPolicy};

/// A parsed invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct Cli {
    /// Subcommand.
    pub command: Command,
}

/// The subcommands.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Print dataset and topology information.
    Info {
        /// CSV path.
        data: String,
        /// Page size in bytes.
        page_bytes: usize,
    },
    /// Predict page accesses without building the index.
    Predict {
        /// CSV path.
        data: String,
        /// Page size in bytes.
        page_bytes: usize,
        /// Memory budget in points.
        m: usize,
        /// Registered predictor name (see `PREDICTOR_NAMES`).
        predictor: String,
        /// Number of queries.
        queries: usize,
        /// Neighbor count.
        k: usize,
        /// Explicit upper-tree height (None = recommended).
        h_upper: Option<usize>,
        /// Sampling fraction for the basic method (None = M/N).
        zeta: Option<f64>,
        /// RNG seed.
        seed: u64,
        /// Worker threads (None = available parallelism, 1 = serial).
        threads: Option<usize>,
        /// Fault-injection seed (None = `HDIDX_FAULT_SEED` or no faults).
        fault_seed: Option<u64>,
        /// Fault rate override in ppm (transient; torn/spikes at half).
        fault_ppm: Option<u32>,
        /// Retry/backoff policy override (None = `HDIDX_RETRY_POLICY` /
        /// `HDIDX_RETRY_BUDGET` or the fixed default).
        retry: Option<RetryPolicy>,
        /// Per-phase fault-rate percentages in `FaultPhase::ALL` order
        /// (None = 100 % everywhere).
        fault_phase_scale: Option<[u16; 3]>,
    },
    /// Run every predictor plus the measured ground truth in one report.
    Compare {
        /// CSV path.
        data: String,
        /// Page size in bytes.
        page_bytes: usize,
        /// Memory budget in points.
        m: usize,
        /// Number of queries.
        queries: usize,
        /// Neighbor count.
        k: usize,
        /// RNG seed.
        seed: u64,
        /// Worker threads (None = available parallelism, 1 = serial).
        threads: Option<usize>,
        /// Fault-injection seed (None = `HDIDX_FAULT_SEED` or no faults).
        fault_seed: Option<u64>,
        /// Fault rate override in ppm (transient; torn/spikes at half).
        fault_ppm: Option<u32>,
        /// Retry/backoff policy override (None = `HDIDX_RETRY_POLICY` /
        /// `HDIDX_RETRY_BUDGET` or the fixed default).
        retry: Option<RetryPolicy>,
        /// Per-phase fault-rate percentages in `FaultPhase::ALL` order
        /// (None = 100 % everywhere).
        fault_phase_scale: Option<[u16; 3]>,
    },
    /// Build the index (simulated on-disk) and measure ground truth.
    Measure {
        /// CSV path.
        data: String,
        /// Page size in bytes.
        page_bytes: usize,
        /// Memory budget in points.
        m: usize,
        /// Number of queries.
        queries: usize,
        /// Neighbor count.
        k: usize,
        /// RNG seed.
        seed: u64,
        /// Worker threads (None = available parallelism, 1 = serial).
        threads: Option<usize>,
        /// Fault-injection seed (None = `HDIDX_FAULT_SEED` or no faults).
        fault_seed: Option<u64>,
        /// Fault rate override in ppm (transient; torn/spikes at half).
        fault_ppm: Option<u32>,
        /// Retry/backoff policy override (None = `HDIDX_RETRY_POLICY` /
        /// `HDIDX_RETRY_BUDGET` or the fixed default).
        retry: Option<RetryPolicy>,
        /// Per-phase fault-rate percentages in `FaultPhase::ALL` order
        /// (None = 100 % everywhere).
        fault_phase_scale: Option<[u16; 3]>,
    },
    /// Generate a named dataset analog as CSV.
    Generate {
        /// Analog name (color64, texture48, texture60, isolet617,
        /// stock360, uniform8d).
        dataset: String,
        /// Cardinality scale in (0, 1].
        scale: f64,
        /// Output CSV path.
        out: String,
    },
    /// Print usage.
    Help,
}

/// Usage text.
pub const USAGE: &str = "\
hdidx — sampling-based index cost prediction (Lang & Singh, SIGMOD 2001)

USAGE:
  hdidx info     --data <csv> [--page-bytes 8192]
  hdidx predict  --data <csv> --m <points>
                 [--predictor resampled|cutoff|basic|uniform|fractal|histogram|distdist]
                 [--queries 500] [--k 21] [--h-upper N] [--zeta F]
                 [--page-bytes 8192] [--seed 42] [--threads N]
                 [--fault-seed S] [--fault-ppm P] [--fault-phase-scale SPEC]
                 [--retry-policy fixed|exponential|budgeted] [--retry-budget B]
  hdidx measure  --data <csv> --m <points> [--queries 500] [--k 21]
                 [--page-bytes 8192] [--seed 42] [--threads N]
                 [--fault-seed S] [--fault-ppm P] [--fault-phase-scale SPEC]
                 [--retry-policy fixed|exponential|budgeted] [--retry-budget B]
  hdidx compare  --data <csv> --m <points> [--queries 500] [--k 21]
                 [--page-bytes 8192] [--seed 42] [--threads N]
                 [--fault-seed S] [--fault-ppm P] [--fault-phase-scale SPEC]
                 [--retry-policy fixed|exponential|budgeted] [--retry-budget B]
  hdidx generate --dataset <name> [--scale 1.0] --out <csv>

`--threads 1` forces serial execution; omitting --threads uses the
HDIDX_THREADS environment variable or the machine's available
parallelism. Results are identical for any thread count.

`--fault-seed S` injects deterministic I/O faults (transient failures,
torn reads, latency spikes) into the simulated disk; `--fault-ppm P`
scales the transient rate in parts per million (default 2000; torn and
spikes run at half that). Omitting --fault-seed falls back to the
HDIDX_FAULT_SEED / HDIDX_FAULT_PPM environment variables; without
either, no faults are injected. The same fault seed reproduces the
identical fault trace, retry counts, and degraded output.
HDIDX_FAULT_BURST_PPM additionally enables correlated fault bursts over
seeded bad page regions at the given per-attempt rate.

`--fault-phase-scale` rescales the fault rates per pipeline phase, as a
comma-separated list of `phase:pct` pairs over the phases `build`,
`query`, and `predict` (unnamed phases stay at 100). For example
`--fault-phase-scale build:5,query:5,predict:300` concentrates fault
pressure on the predictors' sampled I/O while the index build and the
ground-truth measurement run nearly clean — the setting that makes
degraded predictor rows observable in `compare` end to end.

`--retry-policy` paces retries after failed attempts: `fixed` retries
immediately (default), `exponential` charges 2^attempt (+ deterministic
jitter) seek-equivalents of backoff into the I/O bill, and `budgeted`
follows the exponential schedule but gives up once a per-access backoff
budget (`--retry-budget`, default 64 seek-equivalents) would be
overdrawn. `--retry-budget` alone implies the budgeted policy. Explicit
flags override the HDIDX_RETRY_POLICY / HDIDX_RETRY_BUDGET environment
variables, which override the fixed default.
";

struct Opts {
    pairs: Vec<(String, String)>,
}

impl Opts {
    fn parse(rest: &[String]) -> Result<Opts, String> {
        let mut pairs = Vec::new();
        let mut i = 0;
        while i < rest.len() {
            let key = rest[i]
                .strip_prefix("--")
                .ok_or_else(|| format!("expected an option, got `{}`", rest[i]))?;
            let value = rest
                .get(i + 1)
                .ok_or_else(|| format!("option --{key} requires a value"))?;
            pairs.push((key.to_string(), value.clone()));
            i += 2;
        }
        Ok(Opts { pairs })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.pairs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn required(&self, key: &str) -> Result<String, String> {
        self.get(key)
            .map(str::to_string)
            .ok_or_else(|| format!("missing required option --{key}"))
    }

    fn parse_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("option --{key}: cannot parse `{v}`")),
        }
    }

    fn parse_opt<T: std::str::FromStr>(&self, key: &str) -> Result<Option<T>, String> {
        match self.get(key) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| format!("option --{key}: cannot parse `{v}`")),
        }
    }

    fn reject_unknown(&self, known: &[&str]) -> Result<(), String> {
        for (k, _) in &self.pairs {
            if !known.contains(&k.as_str()) {
                return Err(format!("unknown option --{k}"));
            }
        }
        Ok(())
    }
}

fn parse_retry(opts: &Opts) -> Result<Option<RetryPolicy>, String> {
    let budget: Option<u32> = opts.parse_opt("retry-budget")?;
    match opts.get("retry-policy") {
        Some(name) => RetryPolicy::parse(name, budget)
            .map(Some)
            .map_err(|e| format!("option --retry-policy: {e}")),
        // A budget alone implies the budgeted policy (mirrors the
        // HDIDX_RETRY_BUDGET environment variable).
        None => Ok(budget.map(|budget_seeks| RetryPolicy::Budgeted { budget_seeks })),
    }
}

fn parse_phase_scale(opts: &Opts) -> Result<Option<[u16; 3]>, String> {
    let Some(spec) = opts.get("fault-phase-scale") else {
        return Ok(None);
    };
    let mut scale = [100u16; 3];
    for part in spec.split(',') {
        let (name, pct) = part.split_once(':').ok_or_else(|| {
            format!("option --fault-phase-scale: expected phase:pct, got `{part}`")
        })?;
        let idx = FaultPhase::ALL
            .iter()
            .position(|p| p.as_str() == name)
            .ok_or_else(|| {
                format!(
                    "option --fault-phase-scale: unknown phase `{name}` (expected {})",
                    FaultPhase::ALL.map(|p| p.as_str()).join(", ")
                )
            })?;
        scale[idx] = pct
            .parse()
            .map_err(|_| format!("option --fault-phase-scale: cannot parse percentage `{pct}`"))?;
    }
    Ok(Some(scale))
}

fn parse_threads(opts: &Opts) -> Result<Option<usize>, String> {
    let threads: Option<usize> = opts.parse_opt("threads")?;
    if threads == Some(0) {
        return Err("option --threads: must be at least 1".to_string());
    }
    Ok(threads)
}

impl Cli {
    /// Parses `argv` (without the program name).
    ///
    /// # Errors
    ///
    /// Returns a usage-style message for unknown commands/options or
    /// malformed values.
    pub fn parse(argv: &[String]) -> Result<Cli, String> {
        let Some(cmd) = argv.first() else {
            return Ok(Cli {
                command: Command::Help,
            });
        };
        let opts = Opts::parse(&argv[1..])?;
        let command = match cmd.as_str() {
            "help" | "--help" | "-h" => Command::Help,
            "info" => {
                opts.reject_unknown(&["data", "page-bytes"])?;
                Command::Info {
                    data: opts.required("data")?,
                    page_bytes: opts.parse_or("page-bytes", 8192usize)?,
                }
            }
            "predict" => {
                opts.reject_unknown(&[
                    "data",
                    "page-bytes",
                    "m",
                    "predictor",
                    "queries",
                    "k",
                    "h-upper",
                    "zeta",
                    "seed",
                    "threads",
                    "fault-seed",
                    "fault-ppm",
                    "fault-phase-scale",
                    "retry-policy",
                    "retry-budget",
                ])?;
                let predictor = opts.get("predictor").unwrap_or("resampled").to_string();
                if !PREDICTOR_NAMES.contains(&predictor.as_str()) {
                    return Err(format!(
                        "unknown predictor `{predictor}` (expected one of {})",
                        PREDICTOR_NAMES.join(", ")
                    ));
                }
                Command::Predict {
                    data: opts.required("data")?,
                    page_bytes: opts.parse_or("page-bytes", 8192usize)?,
                    m: opts
                        .parse_opt("m")?
                        .ok_or("missing required option --m".to_string())?,
                    predictor,
                    queries: opts.parse_or("queries", 500usize)?,
                    k: opts.parse_or("k", 21usize)?,
                    h_upper: opts.parse_opt("h-upper")?,
                    zeta: opts.parse_opt("zeta")?,
                    seed: opts.parse_or("seed", 42u64)?,
                    threads: parse_threads(&opts)?,
                    fault_seed: opts.parse_opt("fault-seed")?,
                    fault_ppm: opts.parse_opt("fault-ppm")?,
                    retry: parse_retry(&opts)?,
                    fault_phase_scale: parse_phase_scale(&opts)?,
                }
            }
            "compare" => {
                opts.reject_unknown(&[
                    "data",
                    "page-bytes",
                    "m",
                    "queries",
                    "k",
                    "seed",
                    "threads",
                    "fault-seed",
                    "fault-ppm",
                    "fault-phase-scale",
                    "retry-policy",
                    "retry-budget",
                ])?;
                Command::Compare {
                    data: opts.required("data")?,
                    page_bytes: opts.parse_or("page-bytes", 8192usize)?,
                    m: opts
                        .parse_opt("m")?
                        .ok_or("missing required option --m".to_string())?,
                    queries: opts.parse_or("queries", 500usize)?,
                    k: opts.parse_or("k", 21usize)?,
                    seed: opts.parse_or("seed", 42u64)?,
                    threads: parse_threads(&opts)?,
                    fault_seed: opts.parse_opt("fault-seed")?,
                    fault_ppm: opts.parse_opt("fault-ppm")?,
                    retry: parse_retry(&opts)?,
                    fault_phase_scale: parse_phase_scale(&opts)?,
                }
            }
            "measure" => {
                opts.reject_unknown(&[
                    "data",
                    "page-bytes",
                    "m",
                    "queries",
                    "k",
                    "seed",
                    "threads",
                    "fault-seed",
                    "fault-ppm",
                    "fault-phase-scale",
                    "retry-policy",
                    "retry-budget",
                ])?;
                Command::Measure {
                    data: opts.required("data")?,
                    page_bytes: opts.parse_or("page-bytes", 8192usize)?,
                    m: opts
                        .parse_opt("m")?
                        .ok_or("missing required option --m".to_string())?,
                    queries: opts.parse_or("queries", 500usize)?,
                    k: opts.parse_or("k", 21usize)?,
                    seed: opts.parse_or("seed", 42u64)?,
                    threads: parse_threads(&opts)?,
                    fault_seed: opts.parse_opt("fault-seed")?,
                    fault_ppm: opts.parse_opt("fault-ppm")?,
                    retry: parse_retry(&opts)?,
                    fault_phase_scale: parse_phase_scale(&opts)?,
                }
            }
            "generate" => {
                opts.reject_unknown(&["dataset", "scale", "out"])?;
                Command::Generate {
                    dataset: opts.required("dataset")?,
                    scale: opts.parse_or("scale", 1.0f64)?,
                    out: opts.required("out")?,
                }
            }
            other => return Err(format!("unknown command `{other}`\n{USAGE}")),
        };
        Ok(Cli { command })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn parses_predict_with_defaults() {
        let cli = Cli::parse(&argv("predict --data a.csv --m 1000")).unwrap();
        match cli.command {
            Command::Predict {
                data,
                page_bytes,
                m,
                predictor,
                queries,
                k,
                h_upper,
                zeta,
                seed,
                threads,
                fault_seed,
                fault_ppm,
                retry,
                fault_phase_scale,
            } => {
                assert_eq!(data, "a.csv");
                assert_eq!(page_bytes, 8192);
                assert_eq!(m, 1000);
                assert_eq!(predictor, "resampled");
                assert_eq!(queries, 500);
                assert_eq!(k, 21);
                assert_eq!(h_upper, None);
                assert_eq!(zeta, None);
                assert_eq!(seed, 42);
                assert_eq!(threads, None);
                assert_eq!(fault_seed, None);
                assert_eq!(fault_ppm, None);
                assert_eq!(retry, None);
                assert_eq!(fault_phase_scale, None);
            }
            other => panic!("wrong command: {other:?}"),
        }
    }

    #[test]
    fn parses_overrides() {
        let cli = Cli::parse(&argv(
            "predict --data a.csv --m 500 --predictor basic --zeta 0.3 --queries 10 --k 5 \
             --seed 7 --threads 2",
        ))
        .unwrap();
        match cli.command {
            Command::Predict {
                predictor,
                zeta,
                queries,
                k,
                seed,
                threads,
                ..
            } => {
                assert_eq!(predictor, "basic");
                assert_eq!(zeta, Some(0.3));
                assert_eq!(queries, 10);
                assert_eq!(k, 5);
                assert_eq!(seed, 7);
                assert_eq!(threads, Some(2));
            }
            other => panic!("wrong command: {other:?}"),
        }
    }

    #[test]
    fn every_registry_name_parses() {
        for &name in PREDICTOR_NAMES {
            let cli = Cli::parse(&argv(&format!(
                "predict --data a.csv --m 10 --predictor {name}"
            )))
            .unwrap();
            match cli.command {
                Command::Predict { predictor, .. } => assert_eq!(predictor, name),
                other => panic!("wrong command: {other:?}"),
            }
        }
    }

    #[test]
    fn parses_fault_flags() {
        let cli = Cli::parse(&argv(
            "measure --data d.csv --m 100 --fault-seed 7 --fault-ppm 20000",
        ))
        .unwrap();
        match cli.command {
            Command::Measure {
                fault_seed,
                fault_ppm,
                ..
            } => {
                assert_eq!(fault_seed, Some(7));
                assert_eq!(fault_ppm, Some(20_000));
            }
            other => panic!("wrong command: {other:?}"),
        }
        assert!(Cli::parse(&argv("predict --data a.csv --m 10 --fault-seed x")).is_err());
        assert!(Cli::parse(&argv("compare --data a.csv --m 10 --fault-ppm -1")).is_err());
        // info/generate take no fault flags.
        assert!(Cli::parse(&argv("info --data a.csv --fault-seed 1")).is_err());
    }

    #[test]
    fn parses_retry_flags() {
        let cli = Cli::parse(&argv(
            "measure --data d.csv --m 100 --retry-policy exponential",
        ))
        .unwrap();
        match cli.command {
            Command::Measure { retry, .. } => assert_eq!(retry, Some(RetryPolicy::Exponential)),
            other => panic!("wrong command: {other:?}"),
        }
        // A budget alone implies the budgeted policy; alongside a policy
        // name it configures that policy.
        let cli = Cli::parse(&argv("compare --data d.csv --m 100 --retry-budget 9")).unwrap();
        match cli.command {
            Command::Compare { retry, .. } => {
                assert_eq!(retry, Some(RetryPolicy::Budgeted { budget_seeks: 9 }));
            }
            other => panic!("wrong command: {other:?}"),
        }
        let cli = Cli::parse(&argv(
            "predict --data d.csv --m 100 --retry-policy budgeted --retry-budget 17",
        ))
        .unwrap();
        match cli.command {
            Command::Predict { retry, .. } => {
                assert_eq!(retry, Some(RetryPolicy::Budgeted { budget_seeks: 17 }));
            }
            other => panic!("wrong command: {other:?}"),
        }
        assert!(Cli::parse(&argv("predict --data d.csv --m 1 --retry-policy bogus")).is_err());
        assert!(Cli::parse(&argv("predict --data d.csv --m 1 --retry-budget x")).is_err());
        // info/generate take no retry flags.
        assert!(Cli::parse(&argv("info --data d.csv --retry-policy fixed")).is_err());
    }

    #[test]
    fn parses_phase_scale() {
        // Named phases are set, unnamed phases default to 100.
        let cli = Cli::parse(&argv(
            "compare --data d.csv --m 100 --fault-phase-scale build:5,predict:300",
        ))
        .unwrap();
        match cli.command {
            Command::Compare {
                fault_phase_scale, ..
            } => assert_eq!(fault_phase_scale, Some([5, 100, 300])),
            other => panic!("wrong command: {other:?}"),
        }
        let cli = Cli::parse(&argv(
            "predict --data d.csv --m 100 --fault-phase-scale query:0",
        ))
        .unwrap();
        match cli.command {
            Command::Predict {
                fault_phase_scale, ..
            } => assert_eq!(fault_phase_scale, Some([100, 0, 100])),
            other => panic!("wrong command: {other:?}"),
        }
        let bad = [
            "measure --data d.csv --m 1 --fault-phase-scale flush:50",
            "measure --data d.csv --m 1 --fault-phase-scale build",
            "measure --data d.csv --m 1 --fault-phase-scale build:lots",
            // info/generate take no phase-scale flag.
            "info --data d.csv --fault-phase-scale build:50",
        ];
        for args in bad {
            assert!(Cli::parse(&argv(args)).is_err(), "should reject: {args}");
        }
    }

    #[test]
    fn rejects_bad_input() {
        assert!(Cli::parse(&argv("predict --data a.csv")).is_err()); // no --m
        assert!(Cli::parse(&argv("predict --m 10")).is_err()); // no --data
        assert!(Cli::parse(&argv("predict --data a.csv --m ten")).is_err());
        assert!(Cli::parse(&argv("predict --data a.csv --m 10 --predictor x")).is_err());
        assert!(Cli::parse(&argv("predict --data a.csv --m 10 --bogus 1")).is_err());
        assert!(Cli::parse(&argv("predict --data a.csv --m 10 --threads 0")).is_err());
        assert!(Cli::parse(&argv("measure --data a.csv --m 10 --threads zero")).is_err());
        assert!(Cli::parse(&argv("frobnicate")).is_err());
        assert!(Cli::parse(&argv("info --data a.csv extra")).is_err());
    }

    #[test]
    fn empty_and_help() {
        assert_eq!(Cli::parse(&[]).unwrap().command, Command::Help);
        assert_eq!(Cli::parse(&argv("help")).unwrap().command, Command::Help);
        assert_eq!(Cli::parse(&argv("--help")).unwrap().command, Command::Help);
    }

    #[test]
    fn parses_generate_and_measure() {
        let cli = Cli::parse(&argv(
            "generate --dataset texture60 --scale 0.1 --out o.csv",
        ))
        .unwrap();
        assert_eq!(
            cli.command,
            Command::Generate {
                dataset: "texture60".into(),
                scale: 0.1,
                out: "o.csv".into()
            }
        );
        let cli = Cli::parse(&argv("measure --data d.csv --m 100")).unwrap();
        match cli.command {
            Command::Measure { m, queries, .. } => {
                assert_eq!(m, 100);
                assert_eq!(queries, 500);
            }
            other => panic!("wrong command: {other:?}"),
        }
    }
}
