//! Command implementations, returning their report as a `String` so they
//! are testable without capturing stdout.

use crate::args::{Backend, Cli, Command};
use crate::csvio;
use hdidx_baselines::{by_name, PredictorConfig, PREDICTOR_NAMES};
use hdidx_core::Dataset;
use hdidx_datagen::registry::NamedDataset;
use hdidx_datagen::workload::Workload;
use hdidx_diskio::external::{build_on_disk_in, ExternalConfig};
use hdidx_diskio::measure::{measure_on_disk, measure_on_disk_in};
use hdidx_diskio::{DiskModel, DiskOptions, IoStats};
use hdidx_faults::{FaultConfig, FaultPhase, RetryPolicy};
use hdidx_model::{hupper, Prediction, QueryBall};
use hdidx_serve::{
    ArrivalModel, CleanSource, LoadGen, Maintenance, MixSpec, OverloadPolicy, QueryClass,
    ServeConfig, Server, StoreScrubSource,
};
use hdidx_store::{scrub_store_in, Durability, FileStore, OsFs, ScrubReport, SnapshotSet};
use hdidx_vamsplit::topology::{PageConfig, Topology};
use hdidx_vamsplit::tree::RTree;
use std::fmt::Write as _;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

/// Executes a parsed invocation.
///
/// # Errors
///
/// Human-readable message for any failure.
pub fn execute(cli: &Cli) -> Result<String, String> {
    execute_with_status(cli).map(|(report, _)| report)
}

/// [`execute`] plus the process exit status the command requests.
/// Every command exits 0 on success except `scrub`, whose exit code
/// distinguishes what the pass found: 0 all pages clean, 2 corruption
/// found and fully repaired, 3 degraded (pages quarantined or the
/// store fell back to an older generation). Hard errors stay on the
/// `Err` path (exit 1).
///
/// # Errors
///
/// Human-readable message for any failure.
pub fn execute_with_status(cli: &Cli) -> Result<(String, i32), String> {
    if let Command::Scrub {
        store_dir,
        durability,
    } = &cli.command
    {
        return scrub(Path::new(store_dir), *durability);
    }
    let report = match &cli.command {
        Command::Help => Ok(crate::args::USAGE.to_string()),
        Command::Info { data, page_bytes } => info(Path::new(data), *page_bytes),
        Command::Generate {
            dataset,
            scale,
            out,
        } => generate(dataset, *scale, Path::new(out)),
        Command::Scrub { .. } => unreachable!("handled above"),
        Command::Predict {
            data,
            page_bytes,
            m,
            predictor,
            queries,
            k,
            h_upper,
            zeta,
            seed,
            threads,
            fault_seed,
            fault_ppm,
            retry,
            fault_phase_scale,
            simd,
        } => {
            apply_threads(*threads);
            apply_simd(*simd)?;
            predict(
                Path::new(data),
                *page_bytes,
                *m,
                predictor,
                *queries,
                *k,
                *h_upper,
                *zeta,
                *seed,
                resolve_faults(*fault_seed, *fault_ppm, *retry, *fault_phase_scale),
            )
        }
        Command::Measure {
            data,
            page_bytes,
            m,
            queries,
            k,
            seed,
            threads,
            fault_seed,
            fault_ppm,
            retry,
            fault_phase_scale,
            backend,
            store_dir,
            durability,
            simd,
        } => {
            apply_threads(*threads);
            apply_simd(*simd)?;
            measure(
                Path::new(data),
                *page_bytes,
                *m,
                *queries,
                *k,
                *seed,
                resolve_faults(*fault_seed, *fault_ppm, *retry, *fault_phase_scale),
                &StoreSpec {
                    backend: *backend,
                    store_dir: store_dir.clone(),
                    durability: *durability,
                },
            )
        }
        Command::Compare {
            data,
            page_bytes,
            m,
            queries,
            k,
            seed,
            threads,
            fault_seed,
            fault_ppm,
            retry,
            fault_phase_scale,
            simd,
        } => {
            apply_threads(*threads);
            apply_simd(*simd)?;
            compare(
                Path::new(data),
                *page_bytes,
                *m,
                *queries,
                *k,
                *seed,
                resolve_faults(*fault_seed, *fault_ppm, *retry, *fault_phase_scale),
            )
        }
        Command::Serve {
            data,
            page_bytes,
            m,
            rate,
            duration,
            mix,
            arrivals,
            concurrency,
            batch,
            admission_budget,
            admission_window,
            overload,
            only,
            scrub_slice,
            queries,
            k,
            seed,
            threads,
            fault_seed,
            fault_ppm,
            retry,
            fault_phase_scale,
            backend,
            store_dir,
            durability,
            simd,
        } => {
            apply_threads(*threads);
            apply_simd(*simd)?;
            serve(&ServeArgs {
                data: Path::new(data),
                page_bytes: *page_bytes,
                m: *m,
                rate: *rate,
                duration: *duration,
                mix: *mix,
                arrivals: *arrivals,
                concurrency: *concurrency,
                batch: *batch,
                admission_budget: *admission_budget,
                admission_window: *admission_window,
                overload: *overload,
                only: *only,
                scrub_slice: *scrub_slice,
                queries: *queries,
                k: *k,
                seed: *seed,
                faults: resolve_faults(*fault_seed, *fault_ppm, *retry, *fault_phase_scale),
                store: StoreSpec {
                    backend: *backend,
                    store_dir: store_dir.clone(),
                    durability: *durability,
                },
            })
        }
    };
    report.map(|r| (r, 0))
}

/// Resolves the fault-injection configuration: explicit `--fault-seed`
/// wins (at the default 2000 ppm rate unless `--fault-ppm` overrides it);
/// otherwise the `HDIDX_FAULT_SEED` / `HDIDX_FAULT_PPM` environment
/// variables; otherwise no injection. The retry policy follows the same
/// precedence independently: explicit `--retry-policy` / `--retry-budget`
/// beat `HDIDX_RETRY_POLICY` / `HDIDX_RETRY_BUDGET`, which beat the fixed
/// default; `HDIDX_FAULT_BURST_PPM` attaches bursts in either case.
/// `--fault-phase-scale` then rescales the resolved rates per pipeline
/// phase (build / query / predict), letting fault pressure be steered at
/// the predictors' sampled I/O while the build and measurement run clean
/// (or vice versa).
fn resolve_faults(
    fault_seed: Option<u64>,
    fault_ppm: Option<u32>,
    retry: Option<RetryPolicy>,
    fault_phase_scale: Option<[u16; 3]>,
) -> Option<FaultConfig> {
    let base = match fault_seed {
        Some(seed) => {
            let mut cfg = FaultConfig::disabled(seed)
                .with_rate_ppm(2_000)
                .with_burst(FaultConfig::burst_from_env());
            if let Some(r) = RetryPolicy::from_env() {
                cfg = cfg.with_retry(r);
            }
            cfg
        }
        None => FaultConfig::from_env()?,
    };
    let base = match fault_ppm {
        Some(ppm) => base.with_rate_ppm(ppm),
        None => base,
    };
    let base = match retry {
        Some(r) => base.with_retry(r),
        None => base,
    };
    Some(match fault_phase_scale {
        Some(scale) => FaultPhase::ALL
            .iter()
            .zip(scale)
            .fold(base, |cfg, (&phase, pct)| cfg.with_phase_scale(phase, pct)),
        None => base,
    })
}

/// Applies `--threads` for this process. Results are identical for any
/// thread count; this only changes wall-clock time.
fn apply_threads(threads: Option<usize>) {
    if let Some(t) = threads {
        hdidx_pool::set_threads(t);
    }
}

/// Applies `--simd` for this process: pins the geometry-kernel ISA for
/// every subsequent dispatch (overriding `HDIDX_SIMD` and detection).
/// Results are byte-identical for any ISA; this only changes wall-clock
/// time. A fixed ISA the CPU does not support is a startup error.
fn apply_simd(choice: Option<hdidx_core::simd::Choice>) -> Result<(), String> {
    match choice {
        Some(c) => hdidx_core::simd::force(c).map_err(|e| format!("option --simd: {e}")),
        None => Ok(()),
    }
}

/// Storage-backend selection shared by `measure` and `serve`: which
/// [`PageStore`] implementor runs the build, and (for the file backend)
/// where on disk it lives and how eagerly its WAL reaches the platter.
struct StoreSpec {
    backend: Backend,
    store_dir: Option<String>,
    durability: Durability,
}

impl StoreSpec {
    /// The `--store` root. Parsing guarantees it for `--backend file`.
    fn root(&self) -> Result<&Path, String> {
        self.store_dir
            .as_deref()
            .map(Path::new)
            .ok_or_else(|| "--backend file requires --store <dir>".to_string())
    }
}

/// Clears `dir` so a fresh store can claim it.
fn clear_dir(dir: &Path) -> Result<(), String> {
    if dir.exists() {
        std::fs::remove_dir_all(dir).map_err(|e| format!("cannot clear {}: {e}", dir.display()))?;
    }
    Ok(())
}

/// Publishes `tree` as a fresh snapshot generation under
/// `<store_root>/index`, scrubs the committed generation, loads it back,
/// and verifies the loaded arenas are bitwise identical to what went in.
/// Earlier generations are retained (two, by default) and GC'd by the
/// publish, so a crashed run always leaves the previous generation
/// loadable. Returns the loaded tree, the I/O charged by the reopen (so
/// callers can bill it as build I/O), the scrub report of the served
/// generation, and the human-readable persist/scrub/reopen report
/// comparing charged-model seconds with wall-clock seconds.
fn persist_and_reopen(
    store_root: &Path,
    durability: Durability,
    tree: &RTree,
    disk: &DiskModel,
) -> Result<(RTree, IoStats, ScrubReport, u64, String), String> {
    let set =
        SnapshotSet::open(&store_root.join("index"), durability).map_err(|e| e.to_string())?;
    let persist_clock = Instant::now();
    let (generation, persist_io) = set
        .publish(tree, &DiskOptions::new())
        .map_err(|e| e.to_string())?;
    let persist_wall_s = persist_clock.elapsed().as_secs_f64();

    let scrub_report = set.scrub(&DiskOptions::new()).map_err(|e| e.to_string())?;
    let reopen_clock = Instant::now();
    let (loaded, loaded_gen, reopen_io) =
        set.load(&DiskOptions::new()).map_err(|e| e.to_string())?;
    let reopen_wall_s = reopen_clock.elapsed().as_secs_f64();
    if loaded_gen != generation {
        return Err(format!(
            "published generation {generation} but generation {loaded_gen} is serving \
             (scrub fell back: {})",
            scrub_report.fell_back
        ));
    }
    if loaded != *tree {
        return Err("reopened index differs from the tree that was persisted".to_string());
    }

    let mut report = String::new();
    let _ = writeln!(
        report,
        "persist: generation {generation}, durability {durability}, charged {:.3} s, wall {:.3} s",
        disk.cost_seconds(persist_io),
        persist_wall_s
    );
    let _ = writeln!(report, "scrub: {scrub_report}");
    let _ = writeln!(
        report,
        "reopen: verified identical, charged {:.3} s, wall {:.3} s",
        disk.cost_seconds(reopen_io),
        reopen_wall_s
    );
    Ok((loaded, reopen_io, scrub_report, generation, report))
}

/// The `scrub` exit status for a report: 0 clean, 2 corruption found but
/// fully repaired, 3 degraded (quarantined pages or a generation
/// fallback — data was lost or demoted).
fn scrub_status(report: &ScrubReport) -> i32 {
    if report.pages_quarantined > 0 || report.fell_back {
        3
    } else if report.pages_repaired > 0 {
        2
    } else {
        0
    }
}

/// Offline scrub of a snapshot store: verifies every page checksum in
/// the current generation, repairs from the WAL or quarantines, and
/// falls back to (and re-commits) an older retained generation if the
/// current one cannot be made loadable. Accepts either the `--store`
/// root the index was built under (generations live in `<root>/index`),
/// a snapshot-set directory itself, or a bare single-store directory
/// containing `pages.db` directly.
fn scrub(store_root: &Path, durability: Durability) -> Result<(String, i32), String> {
    let index = store_root.join("index");
    let set_root = if index.exists() {
        index
    } else {
        store_root.to_path_buf()
    };
    if set_root.join("pages.db").exists() {
        // A bare FileStore directory, no generation structure: scrub the
        // pages in place against its own WAL; there is nothing to fall
        // back to.
        let report = scrub_store_in(&OsFs, &set_root).map_err(|e| e.to_string())?;
        return Ok((
            format!("store: {} (bare)\nscrub: {report}\n", set_root.display()),
            scrub_status(&report),
        ));
    }
    if !set_root.exists() {
        return Err(format!("no store at {}", store_root.display()));
    }
    let set = SnapshotSet::open(&set_root, durability).map_err(|e| e.to_string())?;
    let report = set.scrub(&DiskOptions::new()).map_err(|e| e.to_string())?;
    let mut out = String::new();
    let _ = writeln!(out, "store: {}", set_root.display());
    let _ = writeln!(out, "scrub: {report}");
    if let Some(generation) = set.current().map_err(|e| e.to_string())? {
        let _ = writeln!(out, "serving generation {generation}");
    }
    Ok((out, scrub_status(&report)))
}

fn load(data: &Path, page_bytes: usize) -> Result<(Dataset, Topology), String> {
    let dataset = csvio::read_csv(data).map_err(|e| e.to_string())?;
    let topo = Topology::new(
        dataset.dim(),
        dataset.len(),
        &PageConfig::with_page_bytes(page_bytes),
    )
    .map_err(|e| e.to_string())?;
    Ok((dataset, topo))
}

fn info(data: &Path, page_bytes: usize) -> Result<String, String> {
    let (dataset, topo) = load(data, page_bytes)?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "dataset: {} points x {} dims",
        dataset.len(),
        dataset.dim()
    );
    let _ = writeln!(out, "page size: {page_bytes} bytes");
    let _ = writeln!(
        out,
        "capacities: {} points/data page, {} entries/directory page",
        topo.cap_data(),
        topo.cap_dir()
    );
    let _ = writeln!(out, "tree height: {}", topo.height());
    let _ = writeln!(out, "leaf pages: {}", topo.leaf_pages());
    let _ = writeln!(out, "total pages: {}", topo.total_pages());
    for h in 2..topo.height() {
        let _ = writeln!(
            out,
            "h_upper = {h}: k = {} upper leaves, lower-tree capacity {}",
            topo.upper_leaf_count(h),
            topo.subtree_capacity(topo.upper_leaf_level(h)) as u64
        );
    }
    Ok(out)
}

fn generate(dataset: &str, scale: f64, out: &Path) -> Result<String, String> {
    let named = match dataset.to_ascii_lowercase().as_str() {
        "color64" => NamedDataset::Color64,
        "texture48" => NamedDataset::Texture48,
        "texture60" => NamedDataset::Texture60,
        "isolet617" => NamedDataset::Isolet617,
        "stock360" => NamedDataset::Stock360,
        "uniform8d" => NamedDataset::Uniform8d,
        other => {
            return Err(format!(
                "unknown dataset `{other}` (expected color64, texture48, texture60, \
                 isolet617, stock360 or uniform8d)"
            ))
        }
    };
    if !(scale > 0.0 && scale <= 1.0) {
        return Err("--scale must lie in (0, 1]".to_string());
    }
    let data = named
        .spec_scaled(scale)
        .generate()
        .map_err(|e| e.to_string())?;
    csvio::write_csv(out, &data).map_err(|e| e.to_string())?;
    Ok(format!(
        "wrote {} ({} x {}) to {}\n",
        named.name(),
        data.len(),
        data.dim(),
        out.display()
    ))
}

/// Describes a registry predictor with the parameters that matter for it.
fn describe(name: &str, cfg: &PredictorConfig) -> String {
    match name {
        "basic" => format!("basic (zeta = {:.4})", cfg.zeta),
        "cutoff" | "resampled" => format!("{name} (h_upper = {})", cfg.h_upper),
        other => other.to_string(),
    }
}

/// Builds the shared predictor configuration from CLI options, resolving
/// the upper-tree height only when `name` actually needs one.
#[allow(clippy::too_many_arguments)]
fn resolve_config(
    name: &str,
    dataset: &Dataset,
    topo: &Topology,
    m: usize,
    k: usize,
    h_upper: Option<usize>,
    zeta: Option<f64>,
    seed: u64,
    faults: Option<FaultConfig>,
) -> Result<PredictorConfig, String> {
    let needs_h = matches!(name, "cutoff" | "resampled");
    let h = match (h_upper, needs_h) {
        (Some(h), _) => h,
        (None, true) => hupper::recommended_h_upper(topo, m).map_err(|e| e.to_string())?,
        (None, false) => PredictorConfig::default().h_upper,
    };
    Ok(PredictorConfig {
        m,
        h_upper: h,
        seed,
        zeta: zeta.unwrap_or((m as f64 / dataset.len() as f64).min(1.0)),
        knn_k: k,
        faults,
        ..PredictorConfig::default()
    })
}

#[allow(clippy::too_many_arguments)]
fn predict(
    data: &Path,
    page_bytes: usize,
    m: usize,
    predictor: &str,
    queries: usize,
    k: usize,
    h_upper: Option<usize>,
    zeta: Option<f64>,
    seed: u64,
    faults: Option<FaultConfig>,
) -> Result<String, String> {
    let (dataset, topo) = load(data, page_bytes)?;
    let workload =
        Workload::density_biased(&dataset, queries, k, seed).map_err(|e| e.to_string())?;
    let balls: Vec<QueryBall> = workload
        .queries
        .iter()
        .map(|q| QueryBall::new(q.center.clone(), q.radius))
        .collect();
    let disk = DiskModel::paper_with_page_bytes(page_bytes);
    let cfg = resolve_config(
        predictor, &dataset, &topo, m, k, h_upper, zeta, seed, faults,
    )?;
    let model =
        by_name(predictor, &cfg).ok_or_else(|| format!("unknown predictor `{predictor}`"))?;
    let prediction = model
        .predict(&dataset, &topo, &balls)
        .map_err(|e| e.to_string())?;
    let mut out = String::new();
    let _ = writeln!(out, "predictor: {}", describe(predictor, &cfg));
    let _ = writeln!(
        out,
        "predicted leaf accesses per {k}-NN query: {:.1} (of {} pages)",
        prediction.avg_leaf_accesses(),
        topo.leaf_pages()
    );
    let _ = writeln!(
        out,
        "prediction I/O: {} = {:.3} s under the paper's disk model",
        prediction.io,
        disk.cost_seconds(prediction.io)
    );
    if faults.is_some() {
        let d = &prediction.degraded;
        let _ = writeln!(
            out,
            "fault degradation: {} units on fallback, {:.1}% coverage, \
             {} retries, +{:.3} s backoff",
            d.leaves_degraded,
            100.0 * d.coverage_fraction,
            prediction.io.retries,
            prediction.io.backoff as f64 * disk.t_seek_s
        );
    }
    Ok(out)
}

#[allow(clippy::too_many_arguments)]
fn measure(
    data: &Path,
    page_bytes: usize,
    m: usize,
    queries: usize,
    k: usize,
    seed: u64,
    faults: Option<FaultConfig>,
    store: &StoreSpec,
) -> Result<String, String> {
    let (dataset, topo) = load(data, page_bytes)?;
    let workload =
        Workload::density_biased(&dataset, queries, k, seed).map_err(|e| e.to_string())?;
    let centers: Vec<Vec<f32>> = workload.queries.iter().map(|q| q.center.clone()).collect();
    let mut cfg = ExternalConfig::with_mem_points(m).map_err(|e| e.to_string())?;
    cfg.faults = faults;
    let disk = DiskModel::paper_with_page_bytes(page_bytes);
    let (measured, backend_report) = match store.backend {
        Backend::Sim => (
            measure_on_disk(&dataset, &topo, &centers, k, &cfg).map_err(|e| e.to_string())?,
            None,
        ),
        Backend::File => {
            let root = store.root()?;
            let scratch = root.join("scratch");
            clear_dir(&scratch)?;
            let mut fs = FileStore::open(
                &scratch,
                store.durability,
                &DiskOptions::new()
                    .fault_plan(cfg.faults)
                    .phase(FaultPhase::Build),
            )
            .map_err(|e| e.to_string())?;
            let measured = measure_on_disk_in(&mut fs, &dataset, &topo, &centers, k, &cfg)
                .map_err(|e| e.to_string())?;
            drop(fs);
            let (_, _, _, _, lines) =
                persist_and_reopen(root, store.durability, &measured.tree, &disk)?;
            let report = format!("backend: file (store {})\n{lines}", root.display());
            (measured, Some(report))
        }
    };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "measured leaf accesses per {k}-NN query: {:.1} (of {} pages)",
        measured.avg_leaf_accesses(),
        topo.leaf_pages()
    );
    let _ = writeln!(out, "build I/O:  {}", measured.build_io);
    let _ = writeln!(out, "query I/O:  {}", measured.query_io);
    let _ = writeln!(
        out,
        "total: {:.3} s under the paper's disk model",
        disk.cost_seconds(measured.total_io())
    );
    let _ = writeln!(out, "simd: {}", hdidx_core::simd::describe());
    if faults.is_some() {
        let _ = writeln!(
            out,
            "injected faults: {} ({} retried)",
            measured.fault_trace.len(),
            measured.total_io().retries
        );
    }
    if let Some(report) = backend_report {
        out.push_str(&report);
    }
    Ok(out)
}

/// Bundled `serve` inputs (the command has too many knobs for a flat
/// argument list to stay readable).
struct ServeArgs<'a> {
    data: &'a Path,
    page_bytes: usize,
    m: usize,
    rate: f64,
    duration: f64,
    mix: MixSpec,
    arrivals: ArrivalModel,
    concurrency: usize,
    batch: usize,
    admission_budget: Option<f64>,
    admission_window: usize,
    overload: OverloadPolicy,
    only: Option<QueryClass>,
    scrub_slice: Option<u64>,
    queries: usize,
    k: usize,
    seed: u64,
    faults: Option<FaultConfig>,
    store: StoreSpec,
}

fn serve(args: &ServeArgs<'_>) -> Result<String, String> {
    let (dataset, topo) = load(args.data, args.page_bytes)?;
    let workload = Workload::density_biased(&dataset, args.queries, args.k, args.seed)
        .map_err(|e| e.to_string())?;
    let candidates: Vec<QueryBall> = workload
        .queries
        .iter()
        .map(|q| QueryBall::new(q.center.clone(), q.radius))
        .collect();
    let disk = DiskModel::paper_with_page_bytes(args.page_bytes);
    let (server, backend_report, store_gen_dir) = match args.store.backend {
        Backend::Sim => (
            Server::build(&dataset, &topo, args.m, args.seed, args.faults)
                .map_err(|e| e.to_string())?,
            None,
            None,
        ),
        Backend::File => {
            let root = args.store.root()?;
            let scratch = root.join("scratch");
            clear_dir(&scratch)?;
            let mut cfg = ExternalConfig::with_mem_points(args.m).map_err(|e| e.to_string())?;
            cfg.faults = args.faults;
            let mut fs = FileStore::open(
                &scratch,
                args.store.durability,
                &DiskOptions::new()
                    .fault_plan(args.faults)
                    .phase(FaultPhase::Build),
            )
            .map_err(|e| e.to_string())?;
            let built =
                build_on_disk_in(&mut fs, &dataset, &topo, &cfg).map_err(|e| e.to_string())?;
            drop(fs);
            let (loaded, reopen_io, scrub_report, generation, lines) =
                persist_and_reopen(root, args.store.durability, &built.tree, &disk)?;
            let server = Server::from_tree(
                &dataset,
                &topo,
                loaded,
                args.m,
                args.seed,
                args.faults,
                built.io + reopen_io,
                Some(&scrub_report),
            )
            .map_err(|e| e.to_string())?;
            let report = format!("backend: file (store {})\n{lines}", root.display());
            let gen_dir = root.join("index").join(format!("gen-{generation:08}"));
            (server, Some(report), Some(gen_dir))
        }
    };
    let mut requests = LoadGen {
        rate_per_s: args.rate,
        duration_s: args.duration,
        model: args.arrivals,
        seed: args.seed,
    }
    .requests(&candidates, &args.mix, args.k)
    .map_err(|e| e.to_string())?;
    // --only physically drops the other classes from the offered stream;
    // surviving requests keep their arrival ids (and so their fault
    // streams), making the filtered run comparable against a laned one.
    if let Some(class) = args.only {
        requests.retain(|r| QueryClass::of(&r.query) == class);
    }
    let cfg = ServeConfig {
        concurrency: args.concurrency,
        batch: args.batch,
        admission_budget_s: args.admission_budget.unwrap_or(f64::INFINITY),
        admission_window: args.admission_window,
        overload: args.overload,
        disk,
    };
    // --scrub-slice turns on idle-slot maintenance: the simulated backend
    // scrubs an always-clean source sized like the index; the file backend
    // scrubs the snapshot generation it is serving.
    let mut maint = match args.scrub_slice {
        None => None,
        Some(slice_pages) => {
            let source: Box<dyn hdidx_serve::ScrubSource> = match &store_gen_dir {
                Some(dir) => Box::new(StoreScrubSource::new(Arc::new(OsFs), dir.clone())),
                None => Box::new(CleanSource {
                    pages: topo.total_pages(),
                }),
            };
            Some(Maintenance::new(source, slice_pages).map_err(|e| e.to_string())?)
        }
    };
    let report = server
        .run_with_maintenance(
            &requests,
            &cfg,
            &hdidx_pool::Pool::current(),
            maint.as_mut(),
        )
        .map_err(|e| e.to_string())?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "serving {} requests ({} arrivals at {} req/s for {} s, mix {})",
        report.total,
        args.arrivals.as_str(),
        args.rate,
        args.duration,
        args.mix
    );
    let _ = writeln!(
        out,
        "executed: {} | shed: {} ({:.1}%) | failed: {}",
        report.executed,
        report.shed,
        100.0 * report.shed_fraction,
        report.failed
    );
    match report.summary {
        Some(s) => {
            let _ = writeln!(
                out,
                "latency p50/p95/p99/max: {:.4} / {:.4} / {:.4} / {:.4} s (mean {:.4} s)",
                s.p50_s, s.p95_s, s.p99_s, s.max_s, s.mean_s
            );
        }
        None => {
            let _ = writeln!(out, "latency: no requests executed");
        }
    }
    let _ = writeln!(
        out,
        "query I/O: {} | charged backoff: {:.4} s | makespan: {:.3} s",
        report.io, report.backoff_s, report.makespan_s
    );
    let _ = writeln!(out, "simd: {}", report.isa);
    let _ = writeln!(out, "latency digest: {:016x}", report.digest);
    for cs in &report.by_class {
        let tail = match cs.summary {
            Some(s) => format!("p50={:.4} p99={:.4}", s.p50_s, s.p99_s),
            None => "p50=n/a p99=n/a".to_string(),
        };
        let _ = writeln!(
            out,
            "class {:<7} n={} shed={} failed={} cut={} {tail} digest={:016x}",
            cs.class, cs.executed, cs.shed, cs.failed, cs.deadline_cut, cs.digest
        );
    }
    if !args.overload.is_noop() {
        let _ = writeln!(
            out,
            "overload: deadline cut {} | hedged {} (wins {}) | degraded predicts {} \
             ({:.1}% coverage)",
            report.deadline_cut,
            report.hedged,
            report.hedge_wins,
            report.degraded.leaves_degraded,
            100.0 * report.degraded.coverage_fraction
        );
    }
    if let Some(b) = report.breaker {
        let _ = writeln!(
            out,
            "breaker: trips={} fast-fails={} state={} digest={:016x}",
            b.trips,
            b.fast_fails,
            b.state.as_str(),
            b.digest
        );
    }
    if let (Some(h), Some(m)) = (report.health, report.maintenance) {
        let _ = writeln!(
            out,
            "health: {h} | maintenance: {} slices, {} pages, {} corrupt, {} repaired, \
             {} quarantined, {:.3} s scrubbing",
            m.slices, m.pages_scanned, m.corrupt, m.repaired, m.quarantined, m.scrub_s
        );
    }
    if let Some(report) = backend_report {
        out.push_str(&report);
    }
    Ok(out)
}

fn compare(
    data: &Path,
    page_bytes: usize,
    m: usize,
    queries: usize,
    k: usize,
    seed: u64,
    faults: Option<FaultConfig>,
) -> Result<String, String> {
    let (dataset, topo) = load(data, page_bytes)?;
    let workload =
        Workload::density_biased(&dataset, queries, k, seed).map_err(|e| e.to_string())?;
    let balls: Vec<QueryBall> = workload
        .queries
        .iter()
        .map(|q| QueryBall::new(q.center.clone(), q.radius))
        .collect();
    let centers: Vec<Vec<f32>> = workload.queries.iter().map(|q| q.center.clone()).collect();
    let mut ext = ExternalConfig::with_mem_points(m).map_err(|e| e.to_string())?;
    ext.faults = faults;
    let measured =
        measure_on_disk(&dataset, &topo, &centers, k, &ext).map_err(|e| e.to_string())?;
    let truth = measured.avg_leaf_accesses();
    let disk = DiskModel::paper_with_page_bytes(page_bytes);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "measured (on-disk build + probe): {truth:.1} leaf accesses/query, \
         {:.3} s total I/O",
        disk.cost_seconds(measured.total_io())
    );
    let mut line = |name: &str, result: Result<Prediction, String>| match result {
        Ok(p) => {
            let degraded = if p.degraded.is_degraded() {
                format!(
                    "  [degraded: {} units, {:.1}% coverage, {} retries, +{:.3} s backoff]",
                    p.degraded.leaves_degraded,
                    100.0 * p.degraded.coverage_fraction,
                    p.io.retries,
                    p.io.backoff as f64 * disk.t_seek_s
                )
            } else {
                String::new()
            };
            let _ = writeln!(
                out,
                "  {name:<22} {:>8.1} acc/query  {:>+7.1}% error  {:>9.3} s I/O{degraded}",
                p.avg_leaf_accesses(),
                100.0 * p.relative_error(truth),
                disk.cost_seconds(p.io)
            );
        }
        Err(e) => {
            let _ = writeln!(out, "  {name:<22} n/a ({e})");
        }
    };
    for &name in PREDICTOR_NAMES {
        let result = resolve_config(name, &dataset, &topo, m, k, None, None, seed, faults)
            .and_then(|cfg| {
                by_name(name, &cfg)
                    .expect("registry covers every PREDICTOR_NAMES entry")
                    .predict(&dataset, &topo, &balls)
                    .map(|p| (p, cfg))
                    .map_err(|e| e.to_string())
            });
        match result {
            Ok((p, cfg)) => line(&describe(name, &cfg), Ok(p)),
            Err(e) => line(name, Err(e)),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {

    fn run(cmdline: &str) -> Result<String, String> {
        let argv: Vec<String> = cmdline.split_whitespace().map(str::to_string).collect();
        crate::run(&argv)
    }

    fn run_with_status(cmdline: &str) -> Result<(String, i32), String> {
        let argv: Vec<String> = cmdline.split_whitespace().map(str::to_string).collect();
        crate::run_with_status(&argv)
    }

    fn temp_csv(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("hdidx_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn generate_info_predict_measure_pipeline() {
        let csv = temp_csv("t48.csv");
        let out = run(&format!(
            "generate --dataset texture48 --scale 0.2 --out {}",
            csv.display()
        ))
        .unwrap();
        assert!(out.contains("TEXTURE48"), "{out}");

        let out = run(&format!("info --data {}", csv.display())).unwrap();
        assert!(out.contains("tree height"), "{out}");
        assert!(out.contains("leaf pages"), "{out}");

        let out = run(&format!(
            "predict --data {} --m 200 --queries 10 --k 5 --seed 1",
            csv.display()
        ))
        .unwrap();
        assert!(out.contains("resampled"), "{out}");
        assert!(out.contains("predicted leaf accesses"), "{out}");

        let out = run(&format!(
            "predict --data {} --m 200 --predictor basic --zeta 0.5 --queries 10 --k 5",
            csv.display()
        ))
        .unwrap();
        assert!(out.contains("basic (zeta = 0.5000)"), "{out}");

        let out = run(&format!(
            "predict --data {} --m 200 --predictor uniform --queries 10 --k 5 --threads 2",
            csv.display()
        ))
        .unwrap();
        assert!(out.contains("predictor: uniform"), "{out}");

        let out = run(&format!(
            "measure --data {} --m 200 --queries 10 --k 5",
            csv.display()
        ))
        .unwrap();
        assert!(out.contains("measured leaf accesses"), "{out}");

        let out = run(&format!(
            "compare --data {} --m 200 --queries 10 --k 5",
            csv.display()
        ))
        .unwrap();
        assert!(out.contains("basic"), "{out}");
        assert!(out.contains("resampled"), "{out}");
        assert!(out.contains("uniform"), "{out}");
        assert!(out.contains("fractal"), "{out}");
        assert!(out.contains("% error"), "{out}");
        std::fs::remove_file(&csv).ok();
    }

    #[test]
    fn fault_flags_surface_degradation_and_retries() {
        let csv = temp_csv("faulted.csv");
        run(&format!(
            "generate --dataset texture48 --scale 0.2 --out {}",
            csv.display()
        ))
        .unwrap();
        let out = run(&format!(
            "predict --data {} --m 200 --queries 10 --k 5 --fault-seed 3 --fault-ppm 20000",
            csv.display()
        ))
        .unwrap();
        assert!(out.contains("fault degradation:"), "{out}");
        assert!(out.contains("% coverage"), "{out}");
        let out = run(&format!(
            "measure --data {} --m 200 --queries 10 --k 5 --fault-seed 3 --fault-ppm 20000",
            csv.display()
        ))
        .unwrap();
        assert!(out.contains("injected faults:"), "{out}");
        // Without fault flags (and without the env variables) the lines
        // stay absent.
        if hdidx_faults::FaultConfig::from_env().is_none() {
            let out = run(&format!(
                "predict --data {} --m 200 --queries 10 --k 5",
                csv.display()
            ))
            .unwrap();
            assert!(!out.contains("fault degradation"), "{out}");
        }
        std::fs::remove_file(&csv).ok();
    }

    #[test]
    fn phase_scale_makes_degraded_compare_rows_reachable() {
        // At a uniform rate the measurement leg (thousands of accesses,
        // no degradation fallback) always hard-fails before any predictor
        // degrades. Steering the pressure onto the predict phase is what
        // makes a degraded row observable in a successful report.
        let csv = temp_csv("phase_scale.csv");
        run(&format!(
            "generate --dataset texture48 --scale 0.2 --out {}",
            csv.display()
        ))
        .unwrap();
        let out = run(&format!(
            "compare --data {} --m 200 --queries 10 --k 5 --fault-seed 3 --fault-ppm 150000 \
             --fault-phase-scale build:5,query:5,predict:300 --retry-policy exponential",
            csv.display()
        ))
        .unwrap();
        assert!(out.contains("measured"), "{out}");
        assert!(out.contains("[degraded:"), "{out}");
        assert!(out.contains("retries"), "{out}");
        assert!(out.contains("backoff"), "{out}");
        std::fs::remove_file(&csv).ok();
    }

    #[test]
    fn serve_reports_latency_and_identical_digest_across_threads() {
        let csv = temp_csv("serve.csv");
        run(&format!(
            "generate --dataset texture48 --scale 0.2 --out {}",
            csv.display()
        ))
        .unwrap();
        let digest_of = |out: &str| {
            out.lines()
                .find_map(|l| l.strip_prefix("latency digest: "))
                .map(str::to_string)
                .unwrap_or_else(|| panic!("no digest line in: {out}"))
        };
        let base = format!(
            "serve --data {} --m 200 --smoke --seed 5 --arrivals bursty",
            csv.display()
        );
        let out1 = run(&format!("{base} --threads 1")).unwrap();
        assert!(out1.contains("latency p50/p95/p99/max:"), "{out1}");
        assert!(out1.contains("executed:"), "{out1}");
        // Byte-identical latency samples at 1, 2, and 8 threads: the
        // digest (and with it every percentile) must not move.
        let out2 = run(&format!("{base} --threads 2")).unwrap();
        let out8 = run(&format!("{base} --threads 8")).unwrap();
        assert_eq!(digest_of(&out1), digest_of(&out2));
        assert_eq!(digest_of(&out1), digest_of(&out8));
        assert_eq!(out1, out2);
        assert_eq!(out1, out8);
        // A different load seed moves the digest.
        let other = run(&format!(
            "serve --data {} --m 200 --smoke --seed 6 --arrivals bursty --threads 2",
            csv.display()
        ))
        .unwrap();
        assert_ne!(digest_of(&out1), digest_of(&other));
        std::fs::remove_file(&csv).ok();
    }

    #[test]
    fn serve_under_faults_sheds_and_stays_deterministic() {
        let csv = temp_csv("serve_faults.csv");
        run(&format!(
            "generate --dataset texture48 --scale 0.2 --out {}",
            csv.display()
        ))
        .unwrap();
        let cmd = format!(
            "serve --data {} --m 200 --smoke --seed 5 --fault-seed 3 --fault-ppm 300000 \
             --retry-policy exponential --fault-phase-scale build:0 \
             --admission-budget 0.05 --threads 2",
            csv.display()
        );
        let a = run(&cmd).unwrap();
        let b = run(&cmd).unwrap();
        assert_eq!(a, b, "faulted serving must reproduce byte for byte");
        assert!(a.contains("shed:"), "{a}");
        let shed_pct: f64 = a
            .lines()
            .find(|l| l.starts_with("executed:"))
            .and_then(|l| l.split('(').nth(1))
            .and_then(|s| s.split('%').next())
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("no shed percentage in: {a}"));
        assert!(shed_pct > 0.0, "budget 50 ms must shed under faults: {a}");
        assert!(a.contains("charged backoff:"), "{a}");
        std::fs::remove_file(&csv).ok();
    }

    #[test]
    fn file_backend_round_trips_and_matches_the_sim_charging() {
        let csv = temp_csv("file_backend.csv");
        run(&format!(
            "generate --dataset texture48 --scale 0.2 --out {}",
            csv.display()
        ))
        .unwrap();
        let store = std::env::temp_dir().join(format!("hdidx_cli_store_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&store);

        // The measurement body is byte-identical across backends (the file
        // store charges through the same model disk); the file backend
        // appends its persist/reopen report after it.
        let sim = run(&format!(
            "measure --data {} --m 200 --queries 10 --k 5 --seed 2",
            csv.display()
        ))
        .unwrap();
        let file = run(&format!(
            "measure --data {} --m 200 --queries 10 --k 5 --seed 2 \
             --backend file --store {} --durability every-4",
            csv.display(),
            store.display()
        ))
        .unwrap();
        assert!(file.starts_with(&sim), "sim:\n{sim}\nfile:\n{file}");
        assert!(file.contains("backend: file"), "{file}");
        assert!(file.contains("persist:"), "{file}");
        assert!(file.contains("durability every-4"), "{file}");
        assert!(file.contains("reopen: verified identical"), "{file}");
        // The snapshot outlives the run: a committed CURRENT pointer and
        // the generation it names.
        assert!(store.join("index").join("CURRENT").exists());
        assert!(store
            .join("index")
            .join("gen-00000001")
            .join("pages.db")
            .exists());

        // Fault traces ride through the file backend unchanged too.
        let sim = run(&format!(
            "measure --data {} --m 200 --queries 10 --k 5 --fault-seed 3 --fault-ppm 20000",
            csv.display()
        ))
        .unwrap();
        let file = run(&format!(
            "measure --data {} --m 200 --queries 10 --k 5 --fault-seed 3 --fault-ppm 20000 \
             --backend file --store {}",
            csv.display(),
            store.display()
        ))
        .unwrap();
        assert!(file.starts_with(&sim), "sim:\n{sim}\nfile:\n{file}");
        assert!(file.contains("injected faults:"), "{file}");

        // Serving from the reopened snapshot answers identically to the
        // sim-built server: same digest, same latency lines.
        let base = format!(
            "serve --data {} --m 200 --smoke --seed 5 --threads 2",
            csv.display()
        );
        let sim = run(&base).unwrap();
        let file = run(&format!(
            "{base} --backend file --store {} --durability none",
            store.display()
        ))
        .unwrap();
        assert!(file.starts_with(&sim), "sim:\n{sim}\nfile:\n{file}");
        assert!(file.contains("durability none"), "{file}");

        // Repeat builds publish fresh generations; only the newest two
        // survive GC.
        let gens: Vec<String> = std::fs::read_dir(store.join("index"))
            .unwrap()
            .filter_map(|e| e.unwrap().file_name().into_string().ok())
            .filter(|n| n.starts_with("gen-"))
            .collect();
        assert_eq!(gens.len(), 2, "GC keeps two generations: {gens:?}");

        // The scrub subcommand reports the store clean and names the
        // serving generation.
        let out = run(&format!("scrub --store {}", store.display())).unwrap();
        assert!(out.contains("scrub:"), "{out}");
        assert!(out.contains("0 corrupt"), "{out}");
        assert!(out.contains("serving generation 3"), "{out}");

        std::fs::remove_dir_all(&store).ok();
        std::fs::remove_file(&csv).ok();
    }

    #[test]
    fn scrub_falls_back_to_the_previous_generation_when_the_newest_corrupts() {
        let csv = temp_csv("scrub_cli.csv");
        run(&format!(
            "generate --dataset texture48 --scale 0.2 --out {}",
            csv.display()
        ))
        .unwrap();
        let store = std::env::temp_dir().join(format!("hdidx_cli_scrub_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&store);
        // Two builds publish generations 1 and 2; GC retains both.
        for _ in 0..2 {
            run(&format!(
                "measure --data {} --m 200 --queries 10 --k 5 --seed 2 \
                 --backend file --store {}",
                csv.display(),
                store.display()
            ))
            .unwrap();
        }

        // Corrupt the committed generation's superblock beyond what the
        // (checkpointed, empty) WAL can repair.
        let pages = store.join("index").join("gen-00000002").join("pages.db");
        let mut bytes = std::fs::read(&pages).unwrap();
        bytes[40] ^= 0xEE;
        std::fs::write(&pages, &bytes).unwrap();

        // The scrub quarantines the page, finds generation 2 unloadable,
        // and demotes CURRENT to the retained generation 1.
        let out = run(&format!("scrub --store {}", store.display())).unwrap();
        assert!(out.contains("fell back"), "{out}");
        assert!(out.contains("serving generation 1"), "{out}");
        // A second scrub is clean and stays on generation 1.
        let out = run(&format!("scrub --store {}", store.display())).unwrap();
        assert!(out.contains("0 corrupt"), "{out}");
        assert!(out.contains("serving generation 1"), "{out}");

        // A bare store directory (pages.db directly, no generations)
        // scrubs in place.
        let out = run(&format!(
            "scrub --store {}",
            store.join("index").join("gen-00000001").display()
        ))
        .unwrap();
        assert!(out.contains("(bare)"), "{out}");
        assert!(out.contains("0 corrupt"), "{out}");

        // A missing store is an error, not a panic.
        let gone = store.join("definitely_absent");
        assert!(run(&format!("scrub --store {}", gone.display())).is_err());

        std::fs::remove_dir_all(&store).ok();
        std::fs::remove_file(&csv).ok();
    }

    #[test]
    fn scrub_exit_codes_distinguish_clean_repaired_and_degraded() {
        use hdidx_diskio::{DiskOptions, PageStore as _};
        use hdidx_store::{Durability, FileStore, PAGE_BYTES, PAYLOAD_BYTES};
        let dir =
            std::env::temp_dir().join(format!("hdidx_cli_scrub_codes_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let span = 8u64;
        let mut st = FileStore::open(&dir, Durability::PerBatch, &DiskOptions::new()).unwrap();
        let f = st.alloc(span).unwrap();
        let payload = |tag: u8| vec![tag | 1; PAYLOAD_BYTES];
        for p in 0..span {
            st.write_pages(&f, p, 1, &payload(p as u8)).unwrap();
        }
        st.sync().unwrap(); // checkpoint: the WAL empties
        st.write_pages(&f, 0, 1, &payload(0xF0)).unwrap(); // WAL covers page 0
        drop(st); // crash: the rewrite lives only in the WAL

        let header = PAGE_BYTES - PAYLOAD_BYTES;
        let pages_db = dir.join("pages.db");
        let corrupt = |p: u64| {
            let mut bytes = std::fs::read(&pages_db).unwrap();
            bytes[p as usize * PAGE_BYTES + header + 3] ^= 0xA5;
            std::fs::write(&pages_db, &bytes).unwrap();
        };
        let scrub = || run_with_status(&format!("scrub --store {}", dir.display()));

        let (out, code) = scrub().unwrap();
        assert_eq!(code, 0, "clean store must exit 0: {out}");

        corrupt(0); // WAL-covered: fully repairable
        let (out, code) = scrub().unwrap();
        assert_eq!(code, 2, "repaired store must exit 2: {out}");
        assert!(out.contains("1 repaired"), "{out}");

        corrupt(span - 1); // no redo source: quarantined
        let (out, code) = scrub().unwrap();
        assert_eq!(code, 3, "quarantine must exit 3: {out}");
        assert!(out.contains("1 quarantined"), "{out}");

        // After the quarantine the store scrubs clean again.
        let (out, code) = scrub().unwrap();
        assert_eq!(code, 0, "{out}");

        // Non-scrub commands report status 0 through the same path.
        let (_, code) = run_with_status("help").unwrap();
        assert_eq!(code, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn serve_overload_flags_report_and_lanes_match_a_filtered_stream() {
        let csv = temp_csv("serve_overload.csv");
        run(&format!(
            "generate --dataset texture48 --scale 0.2 --out {}",
            csv.display()
        ))
        .unwrap();
        // Full policy engaged: per-class rows, an overload summary, a
        // breaker line, and a health line must all render.
        let out = run(&format!(
            "serve --data {} --m 200 --smoke --seed 5 --arrivals bursty \
             --deadline 0.5 --lanes range:inf,knn:0.5,predict:0.5 \
             --breaker 4:0.5:1 --hedge-ms 50 --scrub-slice 8 --threads 2",
            csv.display()
        ))
        .unwrap();
        assert!(out.contains("class range"), "{out}");
        assert!(out.contains("class knn"), "{out}");
        assert!(out.contains("class predict"), "{out}");
        assert!(out.contains("overload: deadline cut"), "{out}");
        assert!(out.contains("breaker: trips="), "{out}");
        assert!(out.contains("health: healthy"), "{out}");

        // Closed lanes for knn/predict admit exactly the range requests
        // with their original arrival ids, so the protected class's row —
        // digest included — matches a stream that never offered the other
        // classes (--only range).
        let class_line = |out: &str| {
            out.lines()
                .find(|l| l.starts_with("class range"))
                .map(str::to_string)
                .unwrap_or_else(|| panic!("no range row in: {out}"))
        };
        let laned = run(&format!(
            "serve --data {} --m 200 --smoke --seed 5 --arrivals bursty \
             --lanes knn:0,predict:0 --threads 2",
            csv.display()
        ))
        .unwrap();
        let only = run(&format!(
            "serve --data {} --m 200 --smoke --seed 5 --arrivals bursty \
             --only range --threads 2",
            csv.display()
        ))
        .unwrap();
        assert_eq!(
            class_line(&laned),
            class_line(&only),
            "laned:\n{laned}\nonly:\n{only}"
        );
        std::fs::remove_file(&csv).ok();
    }

    #[test]
    fn help_and_errors() {
        assert!(run("help").unwrap().contains("USAGE"));
        assert!(run("generate --dataset bogus --out /tmp/x.csv")
            .unwrap_err()
            .contains("unknown dataset"));
        assert!(run("predict --data /nonexistent.csv --m 10")
            .unwrap_err()
            .contains("cannot open"));
        let csv = temp_csv("scale.csv");
        assert!(run(&format!(
            "generate --dataset uniform8d --scale 2.0 --out {}",
            csv.display()
        ))
        .unwrap_err()
        .contains("--scale"));
    }
}
