//! Command implementations, returning their report as a `String` so they
//! are testable without capturing stdout.

use crate::args::{Cli, Command, Method};
use crate::csvio;
use hdidx_core::Dataset;
use hdidx_datagen::registry::NamedDataset;
use hdidx_datagen::workload::Workload;
use hdidx_diskio::external::ExternalConfig;
use hdidx_diskio::measure::measure_on_disk;
use hdidx_diskio::DiskModel;
use hdidx_model::{
    hupper, predict_basic, predict_cutoff, predict_resampled, BasicParams, CutoffParams,
    Prediction, QueryBall, ResampledParams,
};
use hdidx_vamsplit::topology::{PageConfig, Topology};
use std::fmt::Write as _;
use std::path::Path;

/// Executes a parsed invocation.
///
/// # Errors
///
/// Human-readable message for any failure.
pub fn execute(cli: &Cli) -> Result<String, String> {
    match &cli.command {
        Command::Help => Ok(crate::args::USAGE.to_string()),
        Command::Info { data, page_bytes } => info(Path::new(data), *page_bytes),
        Command::Generate {
            dataset,
            scale,
            out,
        } => generate(dataset, *scale, Path::new(out)),
        Command::Predict {
            data,
            page_bytes,
            m,
            method,
            queries,
            k,
            h_upper,
            zeta,
            seed,
        } => predict(
            Path::new(data),
            *page_bytes,
            *m,
            *method,
            *queries,
            *k,
            *h_upper,
            *zeta,
            *seed,
        ),
        Command::Measure {
            data,
            page_bytes,
            m,
            queries,
            k,
            seed,
        } => measure(Path::new(data), *page_bytes, *m, *queries, *k, *seed),
        Command::Compare {
            data,
            page_bytes,
            m,
            queries,
            k,
            seed,
        } => compare(Path::new(data), *page_bytes, *m, *queries, *k, *seed),
    }
}

fn load(data: &Path, page_bytes: usize) -> Result<(Dataset, Topology), String> {
    let dataset = csvio::read_csv(data)?;
    let topo = Topology::new(
        dataset.dim(),
        dataset.len(),
        &PageConfig::with_page_bytes(page_bytes),
    )
    .map_err(|e| e.to_string())?;
    Ok((dataset, topo))
}

fn info(data: &Path, page_bytes: usize) -> Result<String, String> {
    let (dataset, topo) = load(data, page_bytes)?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "dataset: {} points x {} dims",
        dataset.len(),
        dataset.dim()
    );
    let _ = writeln!(out, "page size: {page_bytes} bytes");
    let _ = writeln!(
        out,
        "capacities: {} points/data page, {} entries/directory page",
        topo.cap_data(),
        topo.cap_dir()
    );
    let _ = writeln!(out, "tree height: {}", topo.height());
    let _ = writeln!(out, "leaf pages: {}", topo.leaf_pages());
    let _ = writeln!(out, "total pages: {}", topo.total_pages());
    for h in 2..topo.height() {
        let _ = writeln!(
            out,
            "h_upper = {h}: k = {} upper leaves, lower-tree capacity {}",
            topo.upper_leaf_count(h),
            topo.subtree_capacity(topo.upper_leaf_level(h)) as u64
        );
    }
    Ok(out)
}

fn generate(dataset: &str, scale: f64, out: &Path) -> Result<String, String> {
    let named = match dataset.to_ascii_lowercase().as_str() {
        "color64" => NamedDataset::Color64,
        "texture48" => NamedDataset::Texture48,
        "texture60" => NamedDataset::Texture60,
        "isolet617" => NamedDataset::Isolet617,
        "stock360" => NamedDataset::Stock360,
        "uniform8d" => NamedDataset::Uniform8d,
        other => {
            return Err(format!(
                "unknown dataset `{other}` (expected color64, texture48, texture60, \
                 isolet617, stock360 or uniform8d)"
            ))
        }
    };
    if !(scale > 0.0 && scale <= 1.0) {
        return Err("--scale must lie in (0, 1]".to_string());
    }
    let data = named
        .spec_scaled(scale)
        .generate()
        .map_err(|e| e.to_string())?;
    csvio::write_csv(out, &data)?;
    Ok(format!(
        "wrote {} ({} x {}) to {}\n",
        named.name(),
        data.len(),
        data.dim(),
        out.display()
    ))
}

#[allow(clippy::too_many_arguments)]
fn predict(
    data: &Path,
    page_bytes: usize,
    m: usize,
    method: Method,
    queries: usize,
    k: usize,
    h_upper: Option<usize>,
    zeta: Option<f64>,
    seed: u64,
) -> Result<String, String> {
    let (dataset, topo) = load(data, page_bytes)?;
    let workload =
        Workload::density_biased(&dataset, queries, k, seed).map_err(|e| e.to_string())?;
    let balls: Vec<QueryBall> = workload
        .queries
        .iter()
        .map(|q| QueryBall::new(q.center.clone(), q.radius))
        .collect();
    let disk = DiskModel::paper_with_page_bytes(page_bytes);
    let mut out = String::new();
    let (label, prediction): (String, Prediction) = match method {
        Method::Basic => {
            let z = zeta.unwrap_or((m as f64 / dataset.len() as f64).min(1.0));
            let p = predict_basic(
                &dataset,
                &topo,
                &balls,
                &BasicParams {
                    zeta: z,
                    compensate: true,
                    seed,
                },
            )
            .map_err(|e| e.to_string())?;
            (format!("basic (zeta = {z:.4})"), p)
        }
        Method::Cutoff => {
            let h = match h_upper {
                Some(h) => h,
                None => hupper::recommended_h_upper(&topo, m).map_err(|e| e.to_string())?,
            };
            let p = predict_cutoff(
                &dataset,
                &topo,
                &balls,
                &CutoffParams {
                    m,
                    h_upper: h,
                    seed,
                },
            )
            .map_err(|e| e.to_string())?;
            (format!("cutoff (h_upper = {h})"), p.prediction)
        }
        Method::Resampled => {
            let h = match h_upper {
                Some(h) => h,
                None => hupper::recommended_h_upper(&topo, m).map_err(|e| e.to_string())?,
            };
            let p = predict_resampled(
                &dataset,
                &topo,
                &balls,
                &ResampledParams {
                    m,
                    h_upper: h,
                    seed,
                },
            )
            .map_err(|e| e.to_string())?;
            let _ = writeln!(
                out,
                "sigma_upper = {:.4}, sigma_lower = {:.4}, k = {}",
                p.sigma_upper, p.sigma_lower, p.k
            );
            (format!("resampled (h_upper = {h})"), p.prediction)
        }
    };
    let _ = writeln!(out, "method: {label}");
    let _ = writeln!(
        out,
        "predicted leaf accesses per {k}-NN query: {:.1} (of {} pages)",
        prediction.avg_leaf_accesses(),
        topo.leaf_pages()
    );
    let _ = writeln!(
        out,
        "prediction I/O: {} seeks + {} transfers = {:.3} s under the paper's disk model",
        prediction.io.seeks,
        prediction.io.transfers,
        disk.cost_seconds(prediction.io)
    );
    Ok(out)
}

fn measure(
    data: &Path,
    page_bytes: usize,
    m: usize,
    queries: usize,
    k: usize,
    seed: u64,
) -> Result<String, String> {
    let (dataset, topo) = load(data, page_bytes)?;
    let workload =
        Workload::density_biased(&dataset, queries, k, seed).map_err(|e| e.to_string())?;
    let centers: Vec<Vec<f32>> = workload.queries.iter().map(|q| q.center.clone()).collect();
    let measured = measure_on_disk(
        &dataset,
        &topo,
        &centers,
        k,
        &ExternalConfig::with_mem_points(m),
    )
    .map_err(|e| e.to_string())?;
    let disk = DiskModel::paper_with_page_bytes(page_bytes);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "measured leaf accesses per {k}-NN query: {:.1} (of {} pages)",
        measured.avg_leaf_accesses(),
        topo.leaf_pages()
    );
    let _ = writeln!(
        out,
        "build I/O:  {} seeks + {} transfers",
        measured.build_io.seeks, measured.build_io.transfers
    );
    let _ = writeln!(
        out,
        "query I/O:  {} seeks + {} transfers",
        measured.query_io.seeks, measured.query_io.transfers
    );
    let _ = writeln!(
        out,
        "total: {:.3} s under the paper's disk model",
        disk.cost_seconds(measured.total_io())
    );
    Ok(out)
}

fn compare(
    data: &Path,
    page_bytes: usize,
    m: usize,
    queries: usize,
    k: usize,
    seed: u64,
) -> Result<String, String> {
    let (dataset, topo) = load(data, page_bytes)?;
    let workload =
        Workload::density_biased(&dataset, queries, k, seed).map_err(|e| e.to_string())?;
    let balls: Vec<QueryBall> = workload
        .queries
        .iter()
        .map(|q| QueryBall::new(q.center.clone(), q.radius))
        .collect();
    let centers: Vec<Vec<f32>> = workload.queries.iter().map(|q| q.center.clone()).collect();
    let measured = measure_on_disk(
        &dataset,
        &topo,
        &centers,
        k,
        &ExternalConfig::with_mem_points(m),
    )
    .map_err(|e| e.to_string())?;
    let truth = measured.avg_leaf_accesses();
    let disk = DiskModel::paper_with_page_bytes(page_bytes);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "measured (on-disk build + probe): {truth:.1} leaf accesses/query, \
         {:.3} s total I/O",
        disk.cost_seconds(measured.total_io())
    );
    let mut line = |name: &str, result: Result<Prediction, String>| match result {
        Ok(p) => {
            let _ = writeln!(
                out,
                "  {name:<22} {:>8.1} acc/query  {:>+7.1}% error  {:>9.3} s I/O",
                p.avg_leaf_accesses(),
                100.0 * p.relative_error(truth),
                disk.cost_seconds(p.io)
            );
        }
        Err(e) => {
            let _ = writeln!(out, "  {name:<22} n/a ({e})");
        }
    };
    let zeta = (m as f64 / dataset.len() as f64).min(1.0);
    line(
        "basic",
        predict_basic(
            &dataset,
            &topo,
            &balls,
            &BasicParams {
                zeta,
                compensate: true,
                seed,
            },
        )
        .map_err(|e| e.to_string()),
    );
    let h = hupper::recommended_h_upper(&topo, m).map_err(|e| e.to_string());
    match h {
        Ok(h) => {
            line(
                &format!("cutoff (h={h})"),
                predict_cutoff(
                    &dataset,
                    &topo,
                    &balls,
                    &CutoffParams {
                        m,
                        h_upper: h,
                        seed,
                    },
                )
                .map(|p| p.prediction)
                .map_err(|e| e.to_string()),
            );
            line(
                &format!("resampled (h={h})"),
                predict_resampled(
                    &dataset,
                    &topo,
                    &balls,
                    &ResampledParams {
                        m,
                        h_upper: h,
                        seed,
                    },
                )
                .map(|p| p.prediction)
                .map_err(|e| e.to_string()),
            );
        }
        Err(e) => {
            let _ = writeln!(out, "  phase predictors n/a ({e})");
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {

    fn run(cmdline: &str) -> Result<String, String> {
        let argv: Vec<String> = cmdline.split_whitespace().map(str::to_string).collect();
        crate::run(&argv)
    }

    fn temp_csv(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("hdidx_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn generate_info_predict_measure_pipeline() {
        let csv = temp_csv("t48.csv");
        let out = run(&format!(
            "generate --dataset texture48 --scale 0.2 --out {}",
            csv.display()
        ))
        .unwrap();
        assert!(out.contains("TEXTURE48"), "{out}");

        let out = run(&format!("info --data {}", csv.display())).unwrap();
        assert!(out.contains("tree height"), "{out}");
        assert!(out.contains("leaf pages"), "{out}");

        let out = run(&format!(
            "predict --data {} --m 200 --queries 10 --k 5 --seed 1",
            csv.display()
        ))
        .unwrap();
        assert!(out.contains("resampled"), "{out}");
        assert!(out.contains("predicted leaf accesses"), "{out}");

        let out = run(&format!(
            "predict --data {} --m 200 --method basic --zeta 0.5 --queries 10 --k 5",
            csv.display()
        ))
        .unwrap();
        assert!(out.contains("basic (zeta = 0.5000)"), "{out}");

        let out = run(&format!(
            "measure --data {} --m 200 --queries 10 --k 5",
            csv.display()
        ))
        .unwrap();
        assert!(out.contains("measured leaf accesses"), "{out}");

        let out = run(&format!(
            "compare --data {} --m 200 --queries 10 --k 5",
            csv.display()
        ))
        .unwrap();
        assert!(out.contains("basic"), "{out}");
        assert!(out.contains("resampled"), "{out}");
        assert!(out.contains("% error"), "{out}");
        std::fs::remove_file(&csv).ok();
    }

    #[test]
    fn help_and_errors() {
        assert!(run("help").unwrap().contains("USAGE"));
        assert!(run("generate --dataset bogus --out /tmp/x.csv")
            .unwrap_err()
            .contains("unknown dataset"));
        assert!(run("predict --data /nonexistent.csv --m 10")
            .unwrap_err()
            .contains("cannot open"));
        let csv = temp_csv("scale.csv");
        assert!(run(&format!(
            "generate --dataset uniform8d --scale 2.0 --out {}",
            csv.display()
        ))
        .unwrap_err()
        .contains("--scale"));
    }
}
