//! `hdidx` — sampling-based index cost prediction from the command line.

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match hdidx_cli::run(&argv) {
        Ok(report) => print!("{report}"),
        Err(message) => {
            eprintln!("error: {message}");
            std::process::exit(1);
        }
    }
}
