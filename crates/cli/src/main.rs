//! `hdidx` — sampling-based index cost prediction from the command line.

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match hdidx_cli::run_with_status(&argv) {
        Ok((report, status)) => {
            print!("{report}");
            if status != 0 {
                std::process::exit(status);
            }
        }
        Err(message) => {
            eprintln!("error: {message}");
            std::process::exit(1);
        }
    }
}
