//! # hdidx-cli
//!
//! Library backing the `hdidx` command-line tool: CSV dataset I/O, argument
//! parsing and the command implementations. Kept as a library so the logic
//! is unit-testable; `main.rs` is a thin shell.
//!
//! ```text
//! hdidx info    --data points.csv [--page-bytes 8192]
//! hdidx predict --data points.csv --m 10000 [--method resampled|cutoff|basic]
//!               [--queries 500] [--k 21] [--h-upper N] [--zeta F] [--seed S]
//! hdidx measure --data points.csv --m 10000 [--queries 500] [--k 21]
//! hdidx generate --dataset texture60 --scale 0.1 --out points.csv
//! ```

pub mod args;
pub mod commands;
pub mod csvio;

pub use args::{Cli, Command};

/// Entry point shared by the binary and the tests.
///
/// # Errors
///
/// Returns a human-readable message on any failure (parse error, I/O
/// error, infeasible parameters).
pub fn run(argv: &[String]) -> Result<String, String> {
    let cli = args::Cli::parse(argv)?;
    commands::execute(&cli)
}

/// [`run`] plus the exit status the command requests. Commands exit 0 on
/// success; `scrub` distinguishes its findings (0 clean, 2 repaired,
/// 3 degraded). Hard errors stay on the `Err` path (exit 1).
///
/// # Errors
///
/// Returns a human-readable message on any failure.
pub fn run_with_status(argv: &[String]) -> Result<(String, i32), String> {
    let cli = args::Cli::parse(argv)?;
    commands::execute_with_status(&cli)
}
