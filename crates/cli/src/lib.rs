//! # hdidx-cli
//!
//! Library backing the `hdidx` command-line tool: CSV dataset I/O, argument
//! parsing and the command implementations. Kept as a library so the logic
//! is unit-testable; `main.rs` is a thin shell.
//!
//! ```text
//! hdidx info    --data points.csv [--page-bytes 8192]
//! hdidx predict --data points.csv --m 10000 [--method resampled|cutoff|basic]
//!               [--queries 500] [--k 21] [--h-upper N] [--zeta F] [--seed S]
//! hdidx measure --data points.csv --m 10000 [--queries 500] [--k 21]
//! hdidx generate --dataset texture60 --scale 0.1 --out points.csv
//! ```

pub mod args;
pub mod commands;
pub mod csvio;

pub use args::{Cli, Command};

/// Entry point shared by the binary and the tests.
///
/// # Errors
///
/// Returns a human-readable message on any failure (parse error, I/O
/// error, infeasible parameters).
pub fn run(argv: &[String]) -> Result<String, String> {
    let cli = args::Cli::parse(argv)?;
    commands::execute(&cli)
}
