//! Background maintenance: incremental scrub slices in idle serving
//! slots, driving the store health state machine.
//!
//! The serve loop's slot algebra exposes **idle gaps** — simulated time a
//! slot spends free before the next request dispatches on it. The
//! [`Maintenance`] scheduler spends those gaps on bounded scrub slices
//! ([`ScrubSource::scrub_slice`], `hdidx_store::scrub_pages_in` over a
//! page range for the file backend), so integrity checking rides along
//! with query service instead of requiring a maintenance window. Each
//! slice is charged model seconds (one seek plus one transfer per page),
//! and since idle gaps are themselves pure functions of the request
//! stream, the scrub schedule — and every health transition — replays
//! byte-identically at any thread count.
//!
//! Health drives admission:
//!
//! * [`HealthState::Healthy`] — serve everything;
//! * [`HealthState::Degraded`] — corruption was found (repaired or not
//!   yet re-verified); the legacy backoff-budget admission runs at half
//!   budget, predictions keep serving from memory;
//! * [`HealthState::ReadOnly`] — pages were quarantined (data loss): the
//!   disk-backed classes (range, k-NN) are refused, predictions still
//!   serve. Sticky — a quarantined page never un-loses its bytes, so
//!   only operator intervention (re-materialize, reopen) leaves it.
//!
//! Degraded heals back to healthy after a **full clean cycle**: every
//! page scanned corrupt-free since the last finding.

use hdidx_core::{Error, Result};
use hdidx_diskio::DiskModel;
use hdidx_store::inject::Vfs;
use hdidx_store::{scrub_pages_in, store_pages_in};
use std::fmt;
use std::path::PathBuf;
use std::sync::Arc;

/// Store health as observed by the serve loop's maintenance scrubber.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthState {
    /// No outstanding corruption findings.
    Healthy,
    /// Corruption was found (and at worst repaired); not yet re-verified
    /// by a full clean scrub cycle.
    Degraded,
    /// Pages were quarantined — data loss. Sticky until operator action.
    ReadOnly,
}

impl HealthState {
    /// Stable name (`"healthy"`, `"degraded"`, `"read-only"`).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            HealthState::Healthy => "healthy",
            HealthState::Degraded => "degraded",
            HealthState::ReadOnly => "read-only",
        }
    }
}

impl fmt::Display for HealthState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Findings of one scrub slice, in pages.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SliceOutcome {
    /// Pages that failed verification.
    pub corrupt: u64,
    /// Corrupt pages rewritten from a redo source.
    pub repaired: u64,
    /// Corrupt pages with no redo source, zeroed (data loss).
    pub quarantined: u64,
}

/// A scrubbable page space: what the maintenance scheduler walks.
pub trait ScrubSource {
    /// Number of page slots (the cycle length).
    fn pages(&mut self) -> Result<u64>;

    /// Verifies (and repairs where possible) pages
    /// `first .. first + n`, clamped to the page space.
    fn scrub_slice(&mut self, first: u64, n: u64) -> Result<SliceOutcome>;
}

/// The trivial source for backends with nothing to scrub (the simulated
/// disk keeps bytes in RAM): every slice verifies clean.
#[derive(Debug, Clone, Copy)]
pub struct CleanSource {
    /// Page slots the source pretends to hold.
    pub pages: u64,
}

impl ScrubSource for CleanSource {
    fn pages(&mut self) -> Result<u64> {
        Ok(self.pages)
    }

    fn scrub_slice(&mut self, _first: u64, _n: u64) -> Result<SliceOutcome> {
        Ok(SliceOutcome::default())
    }
}

/// A file-backed store directory as a scrub source: slices run
/// [`scrub_pages_in`] over the directory's page file.
pub struct StoreScrubSource {
    fs: Arc<dyn Vfs>,
    dir: PathBuf,
}

impl StoreScrubSource {
    /// Source over a store directory (a `pages.db` + `wal.log` pair,
    /// e.g. a snapshot generation directory).
    #[must_use]
    pub fn new(fs: Arc<dyn Vfs>, dir: PathBuf) -> StoreScrubSource {
        StoreScrubSource { fs, dir }
    }
}

impl ScrubSource for StoreScrubSource {
    fn pages(&mut self) -> Result<u64> {
        store_pages_in(self.fs.as_ref(), &self.dir)
    }

    fn scrub_slice(&mut self, first: u64, n: u64) -> Result<SliceOutcome> {
        let r = scrub_pages_in(self.fs.as_ref(), &self.dir, first, n)?;
        Ok(SliceOutcome {
            corrupt: r.pages_corrupt,
            repaired: r.pages_repaired,
            quarantined: r.pages_quarantined,
        })
    }
}

/// Cumulative maintenance accounting for one serving run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MaintenanceReport {
    /// Scrub slices executed in idle gaps.
    pub slices: u64,
    /// Pages scanned across all slices.
    pub pages_scanned: u64,
    /// Pages found corrupt.
    pub corrupt: u64,
    /// Corrupt pages repaired from a redo source.
    pub repaired: u64,
    /// Corrupt pages quarantined (data loss).
    pub quarantined: u64,
    /// Simulated seconds of idle time spent scrubbing.
    pub scrub_s: f64,
}

/// The idle-slot maintenance scheduler: a cursor over the page space,
/// spending idle gaps on scrub slices and folding the findings into a
/// [`HealthState`].
pub struct Maintenance {
    source: Box<dyn ScrubSource>,
    slice_pages: u64,
    cursor: u64,
    /// Pages scanned corrupt-free since the last finding; a full cycle
    /// (`>= pages`) heals Degraded back to Healthy.
    clean_streak: u64,
    health: HealthState,
    report: MaintenanceReport,
}

impl Maintenance {
    /// Scheduler over `source`, scrubbing `slice_pages` pages per slice.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidParameter`] when `slice_pages` is zero.
    pub fn new(source: Box<dyn ScrubSource>, slice_pages: u64) -> Result<Maintenance> {
        if slice_pages == 0 {
            return Err(Error::invalid(
                "scrub-slice",
                "slice must cover at least 1 page",
            ));
        }
        Ok(Maintenance {
            source,
            slice_pages,
            cursor: 0,
            clean_streak: 0,
            health: HealthState::Healthy,
            report: MaintenanceReport::default(),
        })
    }

    /// Current health.
    #[must_use]
    pub fn health(&self) -> HealthState {
        self.health
    }

    /// Cumulative accounting.
    #[must_use]
    pub fn report(&self) -> MaintenanceReport {
        self.report
    }

    /// The charged cost of one scrub slice of `n` pages: one seek plus a
    /// transfer per page.
    #[must_use]
    pub fn slice_cost_s(disk: &DiskModel, n: u64) -> f64 {
        disk.t_seek_s + n as f64 * disk.t_xfer_s()
    }

    /// Spends an idle gap of `idle_s` simulated seconds on whole scrub
    /// slices (as many as fit; a partial slice never runs). Returns the
    /// seconds actually consumed, which the serve loop leaves inside the
    /// gap — maintenance never delays the next dispatch.
    ///
    /// # Errors
    ///
    /// I/O errors from the source; findings never fail the call.
    pub fn run_idle(&mut self, idle_s: f64, disk: &DiskModel) -> Result<f64> {
        let mut spent = 0.0;
        loop {
            let pages = self.source.pages()?;
            if pages == 0 {
                return Ok(spent);
            }
            if self.cursor >= pages {
                // The page space shrank under the cursor (store truncated
                // between gaps); restart the cycle.
                self.cursor = 0;
            }
            let n = self.slice_pages.min(pages - self.cursor);
            let cost = Maintenance::slice_cost_s(disk, n);
            if spent + cost > idle_s {
                return Ok(spent);
            }
            let outcome = self.source.scrub_slice(self.cursor, n)?;
            spent += cost;
            self.report.slices += 1;
            self.report.pages_scanned += n;
            self.report.corrupt += outcome.corrupt;
            self.report.repaired += outcome.repaired;
            self.report.quarantined += outcome.quarantined;
            self.report.scrub_s += cost;
            self.cursor += n;
            if self.cursor >= pages {
                self.cursor = 0;
            }
            if outcome.quarantined > 0 {
                self.health = HealthState::ReadOnly;
                self.clean_streak = 0;
            } else if outcome.corrupt > 0 {
                if self.health != HealthState::ReadOnly {
                    self.health = HealthState::Degraded;
                }
                self.clean_streak = 0;
            } else {
                self.clean_streak += n;
                if self.health == HealthState::Degraded && self.clean_streak >= pages {
                    self.health = HealthState::Healthy;
                }
            }
        }
    }
}

impl fmt::Debug for Maintenance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Maintenance")
            .field("slice_pages", &self.slice_pages)
            .field("cursor", &self.cursor)
            .field("health", &self.health)
            .field("report", &self.report)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scripted source: per-slice outcomes keyed by scan order.
    struct Scripted {
        pages: u64,
        outcomes: Vec<SliceOutcome>,
        next: usize,
    }

    impl ScrubSource for Scripted {
        fn pages(&mut self) -> Result<u64> {
            Ok(self.pages)
        }

        fn scrub_slice(&mut self, _first: u64, _n: u64) -> Result<SliceOutcome> {
            let o = self.outcomes.get(self.next).copied().unwrap_or_default();
            self.next += 1;
            Ok(o)
        }
    }

    const DISK: DiskModel = DiskModel::PAPER;

    #[test]
    fn zero_slice_is_rejected() {
        let e = Maintenance::new(Box::new(CleanSource { pages: 8 }), 0)
            .unwrap_err()
            .to_string();
        assert!(e.contains("slice"), "{e}");
    }

    #[test]
    fn idle_gaps_fit_whole_slices_only() {
        let mut m = Maintenance::new(Box::new(CleanSource { pages: 100 }), 4).unwrap();
        let cost = Maintenance::slice_cost_s(&DISK, 4);
        // A gap under one slice runs nothing.
        assert_eq!(m.run_idle(cost * 0.9, &DISK).unwrap(), 0.0);
        assert_eq!(m.report().slices, 0);
        // A gap of 2.5 slices runs exactly two.
        let spent = m.run_idle(cost * 2.5, &DISK).unwrap();
        assert!((spent - 2.0 * cost).abs() < 1e-12);
        assert_eq!(m.report().slices, 2);
        assert_eq!(m.report().pages_scanned, 8);
        assert_eq!(m.health(), HealthState::Healthy);
    }

    #[test]
    fn cursor_wraps_and_clamps_the_tail_slice() {
        let mut m = Maintenance::new(Box::new(CleanSource { pages: 6 }), 4).unwrap();
        // Slice 1: pages 0..4. Slice 2: pages 4..6 (clamped to 2 pages,
        // cheaper). Slice 3 wraps to 0..4 again.
        let c4 = Maintenance::slice_cost_s(&DISK, 4);
        let c2 = Maintenance::slice_cost_s(&DISK, 2);
        let spent = m.run_idle(c4 + c2 + c4, &DISK).unwrap();
        assert!((spent - (c4 + c2 + c4)).abs() < 1e-12);
        assert_eq!(m.report().slices, 3);
        assert_eq!(m.report().pages_scanned, 10);
    }

    #[test]
    fn corruption_degrades_and_a_clean_cycle_heals() {
        let bad = SliceOutcome {
            corrupt: 1,
            repaired: 1,
            quarantined: 0,
        };
        let mut m = Maintenance::new(
            Box::new(Scripted {
                pages: 8,
                outcomes: vec![bad],
                next: 0,
            }),
            4,
        )
        .unwrap();
        let cost = Maintenance::slice_cost_s(&DISK, 4);
        m.run_idle(cost, &DISK).unwrap();
        assert_eq!(m.health(), HealthState::Degraded);
        // One clean slice is only half a cycle: still degraded.
        m.run_idle(cost, &DISK).unwrap();
        assert_eq!(m.health(), HealthState::Degraded);
        // The second clean slice completes the cycle: healed.
        m.run_idle(cost, &DISK).unwrap();
        assert_eq!(m.health(), HealthState::Healthy);
        assert_eq!(m.report().repaired, 1);
    }

    #[test]
    fn quarantine_is_sticky_read_only() {
        let lost = SliceOutcome {
            corrupt: 1,
            repaired: 0,
            quarantined: 1,
        };
        let mut m = Maintenance::new(
            Box::new(Scripted {
                pages: 4,
                outcomes: vec![lost],
                next: 0,
            }),
            4,
        )
        .unwrap();
        let cost = Maintenance::slice_cost_s(&DISK, 4);
        m.run_idle(cost, &DISK).unwrap();
        assert_eq!(m.health(), HealthState::ReadOnly);
        // Arbitrarily many clean cycles later it is still read-only.
        m.run_idle(cost * 10.0, &DISK).unwrap();
        assert_eq!(m.health(), HealthState::ReadOnly);
        assert_eq!(m.report().quarantined, 1);
    }

    #[test]
    fn store_source_scrubs_a_real_directory() {
        use hdidx_diskio::{DiskOptions, PageStore};
        use hdidx_store::inject::InjectedFs;
        use hdidx_store::{Durability, FileStore};

        let fs = InjectedFs::clean();
        let dir = PathBuf::from("/maint");
        let mut st = FileStore::open_in(
            Arc::new(fs.clone()),
            &dir,
            Durability::PerBatch,
            &DiskOptions::new(),
        )
        .unwrap();
        let f = st.alloc(4).unwrap();
        let data = vec![7u8; 2 * hdidx_store::PAYLOAD_BYTES];
        st.write_pages(&f, 0, 2, &data).unwrap();
        PageStore::sync(&mut st).unwrap();
        drop(st);

        let mut src = StoreScrubSource::new(Arc::new(fs), dir);
        assert_eq!(src.pages().unwrap(), 2);
        let o = src.scrub_slice(0, 2).unwrap();
        assert_eq!(o, SliceOutcome::default(), "clean store, clean slice");
    }
}
