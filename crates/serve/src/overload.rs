//! The overload-control policy: per-class deadlines, admission lanes,
//! breaker gating and hedged replays — all expressed in **charged
//! simulated seconds**, so every decision is a pure, replayable function
//! of the request stream and the fault seed.
//!
//! The policy is deliberately *opt-in per knob*: [`OverloadPolicy::none`]
//! is the identity (no deadline, one implicit lane, no breaker, no
//! hedging) and a server run under it is byte-identical to a server that
//! predates the subsystem — the zero-overload digests are pinned by
//! `tests/serve_determinism.rs`.

use crate::request::QueryClass;
use hdidx_core::{Error, Result};
use hdidx_diskio::breaker::BreakerConfig;
use std::fmt;

/// Parses one `class:value` list (`"0.5"` shorthand = every class).
fn parse_per_class(
    spec: &str,
    what: &'static str,
    default: f64,
    parse_value: impl Fn(&str) -> Option<f64>,
) -> Result<[f64; QueryClass::COUNT]> {
    let mut out = [default; QueryClass::COUNT];
    if !spec.contains(':') {
        let v = parse_value(spec)
            .ok_or_else(|| Error::invalid(what, format!("cannot parse `{spec}`")))?;
        return Ok([v; QueryClass::COUNT]);
    }
    let mut seen = [false; QueryClass::COUNT];
    for (i, part) in spec.split(',').enumerate() {
        let field = i + 1;
        let (name, value) = part.split_once(':').ok_or_else(|| {
            Error::invalid(
                what,
                format!("field {field}: expected class:value, got `{part}`"),
            )
        })?;
        let class = QueryClass::parse(name)
            .map_err(|e| Error::invalid(what, format!("field {field}: {e}")))?;
        if seen[class.index()] {
            return Err(Error::invalid(
                what,
                format!("field {field}: class `{name}` given twice"),
            ));
        }
        seen[class.index()] = true;
        out[class.index()] = parse_value(value).ok_or_else(|| {
            Error::invalid(what, format!("field {field}: cannot parse value `{value}`"))
        })?;
    }
    Ok(out)
}

fn parse_seconds(s: &str) -> Option<f64> {
    match s {
        "inf" | "none" => Some(f64::INFINITY),
        other => other.parse().ok(),
    }
}

/// Per-class deadlines on a query's **charged service cost** (including
/// retry backoff), in simulated seconds. `INFINITY` disables the deadline
/// for a class.
///
/// A range or k-NN query whose replay would exceed its deadline is cut
/// off: the pages already replayed stay charged, the query counts as a
/// deadline cut. A predict query is answered anyway — the prefix of the
/// sample it managed to read is scaled up by the uncovered fraction
/// (cutoff extrapolation, the same fallback PR 3's graceful degradation
/// uses) and reported as degraded.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Deadlines {
    /// Deadline per class, indexed by [`QueryClass::index`].
    pub by_class: [f64; QueryClass::COUNT],
}

impl Deadlines {
    /// No deadlines (every class unbounded).
    #[must_use]
    pub fn none() -> Deadlines {
        Deadlines {
            by_class: [f64::INFINITY; QueryClass::COUNT],
        }
    }

    /// The same deadline for every class.
    #[must_use]
    pub fn all(seconds: f64) -> Deadlines {
        Deadlines {
            by_class: [seconds; QueryClass::COUNT],
        }
    }

    /// The deadline for one class.
    #[must_use]
    pub fn get(&self, class: QueryClass) -> f64 {
        self.by_class[class.index()]
    }

    /// Whether every class is unbounded.
    #[must_use]
    pub fn is_noop(&self) -> bool {
        self.by_class.iter().all(|d| d.is_infinite())
    }

    /// Checks every deadline is positive (or infinite) and not NaN.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidParameter`] naming the offending class.
    pub fn validate(&self) -> Result<()> {
        for c in QueryClass::ALL {
            let d = self.get(c);
            if d.is_nan() || d <= 0.0 {
                return Err(Error::invalid(
                    "deadline",
                    format!("deadline for `{c}` must be positive seconds, got {d}"),
                ));
            }
        }
        Ok(())
    }

    /// Parses `"0.5"` (every class) or `"range:0.5,knn:1"` (listed
    /// classes; the rest stay unbounded). `inf`/`none` disable a class.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidParameter`] with a field-oriented message.
    pub fn parse(spec: &str) -> Result<Deadlines> {
        let d = Deadlines {
            by_class: parse_per_class(spec, "deadline", f64::INFINITY, parse_seconds)?,
        };
        d.validate()?;
        Ok(d)
    }
}

impl fmt::Display for Deadlines {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for c in QueryClass::ALL {
            if !first {
                f.write_str(",")?;
            }
            first = false;
            let d = self.get(c);
            if d.is_infinite() {
                write!(f, "{c}:inf")?;
            } else {
                write!(f, "{c}:{d}")?;
            }
        }
        Ok(())
    }
}

/// Per-class admission lanes: a sliding-window **queue-delay budget** per
/// class, in simulated seconds.
///
/// The controller prices the *offered* stream: a shadow pass of the slot
/// algebra (no shedding) assigns every request the queue delay it would
/// see, and each class keeps a sliding window of those delays. A request
/// is shed when its class's window mean exceeds the class budget. Because
/// the shadow delays are a pure function of the offered stream — never of
/// what was previously shed — decisions are byte-identical at any thread
/// count and **monotone in the budget**: tightening a budget can only
/// grow the shed set (pinned by the bursty-admission property test).
///
/// Priorities are expressed through the budgets: `INFINITY` marks a
/// protected lane that never sheds, small budgets shed first, and `0`
/// closes a lane outright (every request shed) — shedding a closed lane
/// is then *exactly* equivalent to never offering its load, which the CI
/// overload leg asserts digest-for-digest.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LanePolicy {
    /// Queue-delay budget per class, indexed by [`QueryClass::index`].
    pub budget_s: [f64; QueryClass::COUNT],
    /// Sliding-window length (delays per class); must be positive.
    pub window: usize,
}

impl LanePolicy {
    /// Default window length.
    pub const DEFAULT_WINDOW: usize = 64;

    /// The budget for one class.
    #[must_use]
    pub fn get(&self, class: QueryClass) -> f64 {
        self.budget_s[class.index()]
    }

    /// Checks the policy: positive window; budgets non-negative (zero
    /// closes a lane) or infinite, never NaN.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidParameter`] describing the violation.
    pub fn validate(&self) -> Result<()> {
        if self.window == 0 {
            return Err(Error::invalid("lanes", "window must be at least 1"));
        }
        for c in QueryClass::ALL {
            let b = self.get(c);
            if b.is_nan() || b < 0.0 {
                return Err(Error::invalid(
                    "lanes",
                    format!("budget for `{c}` must be non-negative seconds, got {b}"),
                ));
            }
        }
        Ok(())
    }

    /// Parses `"knn:0.5,predict:0"` (listed classes; unnamed lanes are
    /// protected, i.e. infinite budget) or a bare number for every class.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidParameter`] with a field-oriented message.
    pub fn parse(spec: &str) -> Result<LanePolicy> {
        let p = LanePolicy {
            budget_s: parse_per_class(spec, "lanes", f64::INFINITY, parse_seconds)?,
            window: LanePolicy::DEFAULT_WINDOW,
        };
        p.validate()?;
        Ok(p)
    }
}

impl fmt::Display for LanePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for c in QueryClass::ALL {
            if !first {
                f.write_str(",")?;
            }
            first = false;
            let b = self.get(c);
            if b.is_infinite() {
                write!(f, "{c}:inf")?;
            } else {
                write!(f, "{c}:{b}")?;
            }
        }
        Ok(())
    }
}

/// The complete overload-control policy of one serving run. Every knob
/// defaults to "off"; [`OverloadPolicy::none`] is the identity policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverloadPolicy {
    /// Per-class service-cost deadlines.
    pub deadlines: Deadlines,
    /// Admission lanes (`None` = one implicit lane, nothing shed).
    pub lanes: Option<LanePolicy>,
    /// Circuit breaker over the query replay path (`None` = disabled).
    pub breaker: Option<BreakerConfig>,
    /// Hedge delay in simulated seconds: a faulted replay whose charged
    /// cost exceeds this re-issues against the snapshot generation's
    /// fault stream and both attempts stay charged (`INFINITY` = off).
    pub hedge_s: f64,
}

impl OverloadPolicy {
    /// The identity policy: no deadlines, no lanes, no breaker, no
    /// hedging. A run under it reproduces the pre-overload serve digests
    /// bit for bit.
    #[must_use]
    pub fn none() -> OverloadPolicy {
        OverloadPolicy {
            deadlines: Deadlines::none(),
            lanes: None,
            breaker: None,
            hedge_s: f64::INFINITY,
        }
    }

    /// Whether every knob is off.
    #[must_use]
    pub fn is_noop(&self) -> bool {
        self.deadlines.is_noop()
            && self.lanes.is_none()
            && self.breaker.is_none()
            && self.hedge_s.is_infinite()
    }

    /// Validates every configured knob.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidParameter`] describing the first violation.
    pub fn validate(&self) -> Result<()> {
        self.deadlines.validate()?;
        if let Some(lanes) = &self.lanes {
            lanes.validate()?;
        }
        if let Some(breaker) = &self.breaker {
            breaker.validate()?;
        }
        if self.hedge_s.is_nan() || self.hedge_s <= 0.0 {
            return Err(Error::invalid(
                "hedge",
                format!("hedge delay must be positive seconds, got {}", self.hedge_s),
            ));
        }
        Ok(())
    }
}

impl Default for OverloadPolicy {
    fn default() -> Self {
        OverloadPolicy::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_identity_policy_is_noop_and_valid() {
        let p = OverloadPolicy::none();
        assert!(p.is_noop());
        p.validate().unwrap();
        assert_eq!(p, OverloadPolicy::default());
    }

    #[test]
    fn deadlines_parse_and_validate() {
        let d = Deadlines::parse("0.5").unwrap();
        assert_eq!(d, Deadlines::all(0.5));
        assert!(!d.is_noop());
        let d = Deadlines::parse("range:0.5,predict:0.1").unwrap();
        assert_eq!(d.get(QueryClass::Range), 0.5);
        assert!(d.get(QueryClass::Knn).is_infinite());
        assert_eq!(d.get(QueryClass::Predict), 0.1);
        assert!(Deadlines::parse("knn:inf").unwrap().is_noop());
        for bad in [
            "",
            "range:0",
            "range:-1",
            "range:nan",
            "scan:1",
            "range:1,range:2",
        ] {
            assert!(Deadlines::parse(bad).is_err(), "`{bad}` must be rejected");
        }
        // Round-trips through Display.
        let d = Deadlines::parse("range:0.5,knn:2").unwrap();
        assert_eq!(Deadlines::parse(&d.to_string()).unwrap(), d);
    }

    #[test]
    fn lanes_parse_validate_and_allow_closed_lanes() {
        let p = LanePolicy::parse("knn:0.5,predict:0").unwrap();
        assert!(
            p.get(QueryClass::Range).is_infinite(),
            "unnamed = protected"
        );
        assert_eq!(p.get(QueryClass::Knn), 0.5);
        assert_eq!(p.get(QueryClass::Predict), 0.0, "zero closes the lane");
        assert_eq!(p.window, LanePolicy::DEFAULT_WINDOW);
        p.validate().unwrap();
        assert!(LanePolicy { window: 0, ..p }.validate().is_err());
        assert!(LanePolicy::parse("knn:-0.5").is_err());
        assert!(LanePolicy::parse("knn:nan").is_err());
        let p = LanePolicy::parse("range:1,knn:2,predict:3").unwrap();
        assert_eq!(LanePolicy::parse(&p.to_string()).unwrap(), p);
    }

    #[test]
    fn policy_validation_covers_every_knob() {
        let mut p = OverloadPolicy::none();
        p.hedge_s = 0.0;
        assert!(p.validate().is_err());
        p.hedge_s = 0.002;
        p.validate().unwrap();
        assert!(!p.is_noop());
        p.deadlines = Deadlines::all(-1.0);
        assert!(p.validate().is_err());
        p.deadlines = Deadlines::none();
        p.lanes = Some(LanePolicy {
            budget_s: [f64::NAN; 3],
            window: 4,
        });
        assert!(p.validate().is_err());
        p.lanes = None;
        p.breaker = Some(BreakerConfig {
            failure_threshold: 0,
            ..BreakerConfig::new()
        });
        assert!(p.validate().is_err());
    }
}
