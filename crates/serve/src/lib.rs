//! # hdidx-serve
//!
//! The query serving subsystem: everything between a built index and a
//! tail-latency number.
//!
//! * [`request`] — typed requests ([`Query::Range`], [`Query::Knn`],
//!   [`Query::Predict`]) and the read-mix specification ([`MixSpec`]).
//! * [`loadgen`] — open-loop arrival generation on **simulated time** from
//!   a seeded stream ([`LoadGen`], fixed-rate Poisson or bursty
//!   hyperexponential interarrivals).
//! * [`server`] — the [`Server`]: owns the bulk-loaded index (flattened
//!   into the SoA counting soup) plus the grown upper tree, executes
//!   request batches over the worker [`hdidx_pool::Pool`] with per-query
//!   panic isolation, and composes latency from the disk cost model —
//!   queueing delay included — rather than measuring wall clocks.
//! * [`latency`] — exact-sample tail accounting ([`LatencyRecorder`]):
//!   nearest-rank p50/p95/p99/max via [`hdidx_check::stats`], plus an
//!   FNV-1a digest of the sample stream so byte-identity across thread
//!   counts is checkable from CLI output.
//! * [`admission`] — backoff-budget load shedding ([`AdmissionControl`]):
//!   when a sliding window of charged fault-retry backoff exceeds its
//!   budget, whole batches are refused and counted instead of queued —
//!   plus per-class admission lanes ([`admission::LaneState`]) shedding on
//!   shadow-priced queue delays.
//! * [`overload`] — the deterministic overload-control policy
//!   ([`OverloadPolicy`]): per-class deadlines on charged service cost,
//!   lane budgets, circuit-breaker gating, and hedged replays. Every knob
//!   defaults off; the identity policy reproduces the pre-overload serve
//!   digests bit for bit.
//! * [`maintain`] — idle-slot maintenance ([`Maintenance`]): incremental
//!   scrub slices run in the slot algebra's idle gaps and drive the
//!   Healthy → Degraded → ReadOnly health machine gating admission.
//!
//! The crate inherits the workspace determinism contract: with a fixed
//! data seed, load seed, and fault seed, a serving run produces
//! byte-identical per-query latency samples — and therefore identical
//! percentiles, shed fractions, and digests — at any `HDIDX_THREADS`
//! setting, because arrivals, fault plans, time accounting, and every
//! overload decision (shed, cut, trip, hedge) are pure functions of the
//! request stream, never of scheduling.

pub mod admission;
pub mod latency;
pub mod loadgen;
pub mod maintain;
pub mod overload;
pub mod request;
pub mod server;

pub use admission::AdmissionControl;
pub use latency::{LatencyRecorder, LatencySummary};
pub use loadgen::{ArrivalModel, LoadGen};
pub use maintain::{
    CleanSource, HealthState, Maintenance, MaintenanceReport, ScrubSource, SliceOutcome,
    StoreScrubSource,
};
pub use overload::{Deadlines, LanePolicy, OverloadPolicy};
pub use request::{MixSpec, Query, QueryClass, Request};
pub use server::{BreakerSummary, ClassStats, ServeConfig, ServeReport, Server};
