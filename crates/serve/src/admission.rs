//! Backoff-budget admission control.
//!
//! The server charges every retry backoff it performs (in simulated
//! seconds) into a sliding window. When the window's total charged backoff
//! exceeds the configured budget, the controller sheds the next batch
//! instead of admitting it — the standard load-shedding move: under fault
//! pressure it is better to refuse work outright than to queue it behind
//! retries and blow the tail.
//!
//! Shedding also *drains* part of the window, so pressure ages out and the
//! server recovers once faults subside instead of shedding forever. All
//! decisions are functions of the request stream and fault plan only —
//! never of wall-clock time or thread scheduling — so shed decisions are
//! deterministic and thread-count independent.

use std::collections::VecDeque;

/// Number of most-recent backoff charges the sliding window retains.
const WINDOW_CAP: usize = 64;

/// Sliding-window admission controller.
#[derive(Debug, Clone)]
pub struct AdmissionControl {
    /// Backoff budget in simulated seconds; `f64::INFINITY` disables
    /// shedding entirely.
    budget_s: f64,
    /// Most recent charged backoffs, oldest first.
    window: VecDeque<f64>,
    admitted: u64,
    shed: u64,
}

impl AdmissionControl {
    /// Controller with the given window budget (seconds). Pass
    /// `f64::INFINITY` to disable shedding.
    #[must_use]
    pub fn new(budget_s: f64) -> Self {
        AdmissionControl {
            budget_s,
            window: VecDeque::with_capacity(WINDOW_CAP),
            admitted: 0,
            shed: 0,
        }
    }

    /// Current charged backoff in the window, in seconds.
    #[must_use]
    pub fn window_backoff_s(&self) -> f64 {
        self.window.iter().sum()
    }

    /// Decides whether to admit a batch of `size` requests. On shed, the
    /// batch is counted and the oldest half-window of charges is drained so
    /// the server can recover once pressure subsides.
    pub fn admit_batch(&mut self, size: usize) -> bool {
        if self.budget_s.is_finite() && self.window_backoff_s() > self.budget_s {
            self.shed += size as u64;
            // Drain the older half of the window; repeated sheds therefore
            // clear pressure in O(log) batches rather than shedding forever.
            let drain = self.window.len().div_ceil(2);
            self.window.drain(..drain);
            false
        } else {
            self.admitted += size as u64;
            true
        }
    }

    /// Charges the backoff incurred by one executed request into the
    /// sliding window (zero charges are kept too: they age out old
    /// pressure as healthy requests flow).
    pub fn observe(&mut self, backoff_s: f64) {
        if self.window.len() == WINDOW_CAP {
            self.window.pop_front();
        }
        self.window.push_back(backoff_s);
    }

    /// Requests admitted so far.
    #[must_use]
    pub fn admitted(&self) -> u64 {
        self.admitted
    }

    /// Requests shed so far.
    #[must_use]
    pub fn shed(&self) -> u64 {
        self.shed
    }

    /// Fraction of offered requests shed (0 when nothing was offered).
    #[must_use]
    pub fn shed_fraction(&self) -> f64 {
        let total = self.admitted + self.shed;
        if total == 0 {
            0.0
        } else {
            self.shed as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infinite_budget_never_sheds() {
        let mut ac = AdmissionControl::new(f64::INFINITY);
        for _ in 0..1000 {
            assert!(ac.admit_batch(4));
            ac.observe(1e9);
        }
        assert_eq!(ac.shed(), 0);
        assert_eq!(ac.admitted(), 4000);
        assert_eq!(ac.shed_fraction(), 0.0);
    }

    #[test]
    fn sheds_over_budget_and_recovers_by_draining() {
        let mut ac = AdmissionControl::new(1.0);
        assert!(ac.admit_batch(8), "empty window admits");
        ac.observe(0.7);
        ac.observe(0.7);
        // Window now holds 1.4 s > 1.0 s budget.
        assert!(!ac.admit_batch(8));
        assert_eq!(ac.shed(), 8);
        // The shed drained half the window (0.7 s <= budget) -> admits again.
        assert!(ac.admit_batch(8));
        assert_eq!(ac.admitted(), 16);
        let expect = 8.0 / 24.0;
        assert!((ac.shed_fraction() - expect).abs() < 1e-12);
    }

    #[test]
    fn healthy_traffic_ages_out_old_pressure() {
        let mut ac = AdmissionControl::new(0.5);
        ac.observe(10.0);
        assert!(!ac.admit_batch(1), "pressure sheds");
        // After the shed drain the window is empty; zero-backoff charges
        // from healthy requests keep it clean.
        for _ in 0..WINDOW_CAP {
            assert!(ac.admit_batch(1));
            ac.observe(0.0);
        }
        assert!(ac.window_backoff_s().abs() < 1e-12);
    }

    #[test]
    fn window_is_bounded() {
        let mut ac = AdmissionControl::new(f64::INFINITY);
        for _ in 0..(WINDOW_CAP * 3) {
            ac.observe(0.25);
        }
        assert!((ac.window_backoff_s() - WINDOW_CAP as f64 * 0.25).abs() < 1e-9);
    }
}
