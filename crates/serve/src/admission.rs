//! Backoff-budget admission control and per-class admission lanes.
//!
//! The server charges every retry backoff it performs (in simulated
//! seconds) into a sliding window. When the window's total charged backoff
//! exceeds the configured budget, the controller sheds the next batch
//! instead of admitting it — the standard load-shedding move: under fault
//! pressure it is better to refuse work outright than to queue it behind
//! retries and blow the tail.
//!
//! Shedding also *drains* part of the window, so pressure ages out and the
//! server recovers once faults subside instead of shedding forever. All
//! decisions are functions of the request stream and fault plan only —
//! never of wall-clock time or thread scheduling — so shed decisions are
//! deterministic and thread-count independent.
//!
//! # Caveat: only backoff-charging retry policies create pressure
//!
//! The window accumulates **charged backoff seconds**. Under
//! `RetryPolicy::Exponential` and `RetryPolicy::Budgeted` every retry
//! charges seek-denominated backoff, so fault pressure is visible here.
//! `RetryPolicy::Fixed` retries charge *no* backoff at all — under it the
//! window stays at zero and this controller never sheds, no matter how
//! hard the fault storm. Pair `Fixed` with per-class [lanes] or deadlines
//! (`crate::OverloadPolicy`) if shedding is still wanted.
//!
//! [lanes]: LaneState

use crate::overload::LanePolicy;
use crate::request::QueryClass;
use hdidx_core::{Error, Result};
use std::collections::VecDeque;

/// Sliding-window admission controller.
#[derive(Debug, Clone)]
pub struct AdmissionControl {
    /// Backoff budget in simulated seconds; `f64::INFINITY` disables
    /// shedding entirely.
    budget_s: f64,
    /// Budget multiplier applied while the store health is degraded
    /// (1.0 = healthy). See [`AdmissionControl::set_budget_scale`].
    budget_scale: f64,
    /// Number of most-recent backoff charges the window retains.
    window_cap: usize,
    /// Most recent charged backoffs, oldest first.
    window: VecDeque<f64>,
    admitted: u64,
    shed: u64,
}

impl AdmissionControl {
    /// Default sliding-window length (most-recent backoff charges kept).
    pub const DEFAULT_WINDOW: usize = 64;

    /// Controller with the given window budget (seconds) and the default
    /// window length ([`AdmissionControl::DEFAULT_WINDOW`]). Pass
    /// `f64::INFINITY` to disable shedding.
    #[must_use]
    pub fn new(budget_s: f64) -> Self {
        AdmissionControl::with_window(budget_s, AdmissionControl::DEFAULT_WINDOW)
            .expect("default window is valid")
    }

    /// Controller with an explicit sliding-window length.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidParameter`] when `window` is zero — a zero-length
    /// window can hold no pressure and would silently disable shedding.
    pub fn with_window(budget_s: f64, window: usize) -> Result<Self> {
        if window == 0 {
            return Err(Error::invalid(
                "admission-window",
                "window must be at least 1 charge",
            ));
        }
        Ok(AdmissionControl {
            budget_s,
            budget_scale: 1.0,
            window_cap: window,
            window: VecDeque::with_capacity(window),
            admitted: 0,
            shed: 0,
        })
    }

    /// Current charged backoff in the window, in seconds.
    #[must_use]
    pub fn window_backoff_s(&self) -> f64 {
        self.window.iter().sum()
    }

    /// Scales the effective budget (e.g. `0.5` while the store health is
    /// degraded, `1.0` when healthy). Applies to subsequent decisions only,
    /// so the scale trajectory is part of the deterministic replay.
    pub fn set_budget_scale(&mut self, scale: f64) {
        self.budget_scale = scale;
    }

    /// Decides whether to admit a batch of `size` requests. On shed, the
    /// batch is counted and the oldest half-window of charges is drained so
    /// the server can recover once pressure subsides.
    pub fn admit_batch(&mut self, size: usize) -> bool {
        let budget = self.budget_s * self.budget_scale;
        if budget.is_finite() && self.window_backoff_s() > budget {
            self.shed += size as u64;
            // Drain the older half of the window; repeated sheds therefore
            // clear pressure in O(log) batches rather than shedding forever.
            let drain = self.window.len().div_ceil(2);
            self.window.drain(..drain);
            false
        } else {
            self.admitted += size as u64;
            true
        }
    }

    /// Charges the backoff incurred by one executed request into the
    /// sliding window (zero charges are kept too: they age out old
    /// pressure as healthy requests flow).
    pub fn observe(&mut self, backoff_s: f64) {
        if self.window.len() == self.window_cap {
            self.window.pop_front();
        }
        self.window.push_back(backoff_s);
    }

    /// Counts requests refused outside the batch decision (health gating,
    /// lane shedding surfaced through this controller's totals).
    pub fn count_shed(&mut self, n: u64) {
        self.shed += n;
    }

    /// Requests admitted so far.
    #[must_use]
    pub fn admitted(&self) -> u64 {
        self.admitted
    }

    /// Requests shed so far.
    #[must_use]
    pub fn shed(&self) -> u64 {
        self.shed
    }

    /// Fraction of offered requests shed (0 when nothing was offered).
    #[must_use]
    pub fn shed_fraction(&self) -> f64 {
        let total = self.admitted + self.shed;
        if total == 0 {
            0.0
        } else {
            self.shed as f64 / total as f64
        }
    }
}

/// Per-class admission lanes over **shadow queue delays**.
///
/// The server prices the offered stream with a no-shedding shadow pass of
/// its slot algebra; each request's shadow queue delay is charged here
/// into its class's sliding window *before* the admit decision for that
/// request is made. A request is shed when its class's window **mean**
/// exceeds the class budget ([`LanePolicy`]): an infinite budget marks a
/// protected lane (never sheds), a zero budget closes the lane (always
/// sheds — equivalent, digest for digest, to never offering that load).
///
/// Because the pressure signal derives from the offered stream only —
/// never from earlier shed decisions — admission is a pure per-request
/// function, byte-identical at any thread count and monotone in every
/// budget: lowering a budget can only grow that class's shed set.
#[derive(Debug, Clone)]
pub struct LaneState {
    policy: LanePolicy,
    windows: [VecDeque<f64>; QueryClass::COUNT],
    shed: [u64; QueryClass::COUNT],
    admitted: [u64; QueryClass::COUNT],
}

impl LaneState {
    /// Lane state for a validated policy.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidParameter`] from [`LanePolicy::validate`].
    pub fn new(policy: LanePolicy) -> Result<LaneState> {
        policy.validate()?;
        Ok(LaneState {
            policy,
            windows: std::array::from_fn(|_| VecDeque::with_capacity(policy.window)),
            shed: [0; QueryClass::COUNT],
            admitted: [0; QueryClass::COUNT],
        })
    }

    /// Charges one shadow queue delay into the class window, then decides
    /// admission for the request that produced it. Returns `true` to admit.
    pub fn admit(&mut self, class: QueryClass, shadow_delay_s: f64) -> bool {
        let i = class.index();
        if self.windows[i].len() == self.policy.window {
            self.windows[i].pop_front();
        }
        self.windows[i].push_back(shadow_delay_s);
        let budget = self.policy.get(class);
        let admit = if budget.is_infinite() {
            true
        } else if budget <= 0.0 {
            false
        } else {
            let w = &self.windows[i];
            let mean = w.iter().sum::<f64>() / w.len() as f64;
            mean <= budget
        };
        if admit {
            self.admitted[i] += 1;
        } else {
            self.shed[i] += 1;
        }
        admit
    }

    /// Requests shed per class, indexed by [`QueryClass::index`].
    #[must_use]
    pub fn shed_by_class(&self) -> [u64; QueryClass::COUNT] {
        self.shed
    }

    /// Total requests shed by the lanes.
    #[must_use]
    pub fn shed_total(&self) -> u64 {
        self.shed.iter().sum()
    }

    /// Total requests admitted by the lanes.
    #[must_use]
    pub fn admitted_total(&self) -> u64 {
        self.admitted.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infinite_budget_never_sheds() {
        let mut ac = AdmissionControl::new(f64::INFINITY);
        for _ in 0..1000 {
            assert!(ac.admit_batch(4));
            ac.observe(1e9);
        }
        assert_eq!(ac.shed(), 0);
        assert_eq!(ac.admitted(), 4000);
        assert_eq!(ac.shed_fraction(), 0.0);
    }

    #[test]
    fn sheds_over_budget_and_recovers_by_draining() {
        let mut ac = AdmissionControl::new(1.0);
        assert!(ac.admit_batch(8), "empty window admits");
        ac.observe(0.7);
        ac.observe(0.7);
        // Window now holds 1.4 s > 1.0 s budget.
        assert!(!ac.admit_batch(8));
        assert_eq!(ac.shed(), 8);
        // The shed drained half the window (0.7 s <= budget) -> admits again.
        assert!(ac.admit_batch(8));
        assert_eq!(ac.admitted(), 16);
        let expect = 8.0 / 24.0;
        assert!((ac.shed_fraction() - expect).abs() < 1e-12);
    }

    #[test]
    fn healthy_traffic_ages_out_old_pressure() {
        let mut ac = AdmissionControl::new(0.5);
        ac.observe(10.0);
        assert!(!ac.admit_batch(1), "pressure sheds");
        // After the shed drain the window is empty; zero-backoff charges
        // from healthy requests keep it clean.
        for _ in 0..AdmissionControl::DEFAULT_WINDOW {
            assert!(ac.admit_batch(1));
            ac.observe(0.0);
        }
        assert!(ac.window_backoff_s().abs() < 1e-12);
    }

    #[test]
    fn window_is_bounded_and_configurable() {
        let mut ac = AdmissionControl::new(f64::INFINITY);
        for _ in 0..(AdmissionControl::DEFAULT_WINDOW * 3) {
            ac.observe(0.25);
        }
        let expect = AdmissionControl::DEFAULT_WINDOW as f64 * 0.25;
        assert!((ac.window_backoff_s() - expect).abs() < 1e-9);

        let mut ac = AdmissionControl::with_window(f64::INFINITY, 4).unwrap();
        for _ in 0..100 {
            ac.observe(0.25);
        }
        assert!((ac.window_backoff_s() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zero_window_is_rejected() {
        let e = AdmissionControl::with_window(1.0, 0)
            .unwrap_err()
            .to_string();
        assert!(e.contains("window"), "{e}");
        // A 1-charge window is legal (tightest possible controller).
        let mut ac = AdmissionControl::with_window(0.5, 1).unwrap();
        ac.observe(0.7);
        assert!(!ac.admit_batch(1));
    }

    #[test]
    fn degraded_scale_halves_the_effective_budget() {
        let mut ac = AdmissionControl::new(1.0);
        ac.observe(0.7);
        assert!(ac.admit_batch(1), "0.7 under the 1.0 budget");
        ac.set_budget_scale(0.5);
        assert!(!ac.admit_batch(1), "0.7 over the 0.5 effective budget");
        ac.set_budget_scale(1.0);
        // The shed drained the window; pressure is gone either way.
        assert!(ac.admit_batch(1));
    }

    #[test]
    fn lanes_shed_by_window_mean_and_respect_protection() {
        let policy = LanePolicy {
            budget_s: [f64::INFINITY, 0.5, 0.0],
            window: 2,
        };
        let mut lanes = LaneState::new(policy).unwrap();
        // Protected lane: admits regardless of pressure.
        assert!(lanes.admit(QueryClass::Range, 1e9));
        // Budgeted lane: mean of the window decides.
        assert!(lanes.admit(QueryClass::Knn, 0.4));
        assert!(!lanes.admit(QueryClass::Knn, 1.0), "mean 0.7 > 0.5");
        assert!(!lanes.admit(QueryClass::Knn, 1.0), "mean 1.0 > 0.5");
        assert!(lanes.admit(QueryClass::Knn, 0.0), "mean 0.5 <= 0.5");
        // Closed lane: always sheds, even at zero pressure.
        assert!(!lanes.admit(QueryClass::Predict, 0.0));
        assert_eq!(lanes.shed_by_class(), [0, 2, 1]);
        assert_eq!(lanes.shed_total(), 3);
        assert_eq!(lanes.admitted_total(), 3);
    }

    #[test]
    fn lane_shedding_is_monotone_in_the_budget() {
        // The same delay stream under a tighter budget must shed a superset.
        let delays: Vec<f64> = (0..200).map(|i| f64::from((i * 37) % 100) / 50.0).collect();
        let shed_set = |budget: f64| -> Vec<usize> {
            let mut lanes = LaneState::new(LanePolicy {
                budget_s: [budget; QueryClass::COUNT],
                window: 8,
            })
            .unwrap();
            delays
                .iter()
                .enumerate()
                .filter(|&(_, &d)| !lanes.admit(QueryClass::Range, d))
                .map(|(i, _)| i)
                .collect()
        };
        let mut prev = shed_set(f64::INFINITY);
        assert!(prev.is_empty());
        for budget in [2.0, 1.0, 0.5, 0.1, 0.0] {
            let cur = shed_set(budget);
            assert!(
                prev.iter().all(|i| cur.contains(i)),
                "budget {budget}: shed set must contain the looser set"
            );
            prev = cur;
        }
        assert_eq!(prev.len(), delays.len(), "closed lane sheds everything");
    }
}
