//! Open-loop load generation on simulated time.
//!
//! Arrival times are drawn from a seeded `hdidx-rand` stream — never from
//! a wall clock — so a load profile is a pure function of `(rate, duration,
//! model, seed)` and every run is replayable bit for bit. The generator is
//! *open-loop*: arrivals do not depend on service completions, which is
//! what makes tail latency under overload observable at all (a closed loop
//! self-throttles and hides the queueing collapse).
//!
//! Two interarrival models:
//!
//! * [`ArrivalModel::Fixed`] — a Poisson process at the configured rate
//!   (i.i.d. exponential gaps via inverse-CDF sampling).
//! * [`ArrivalModel::Bursty`] — a balanced hyperexponential: each gap is
//!   drawn hot (4× the rate) or cold (4/7× the rate) with equal
//!   probability, preserving the mean interarrival `1/rate` exactly while
//!   clumping arrivals into bursts (squared coefficient of variation ≈ 2.1
//!   vs 1 for Poisson).

use crate::request::{MixSpec, Query, Request};
use hdidx_core::{Error, Result};
use hdidx_model::QueryBall;
use hdidx_rand::{derive_seed, seeded, Rng};

/// Interarrival-time model of the open-loop stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalModel {
    /// Poisson arrivals at the configured rate.
    Fixed,
    /// Hyperexponential bursts with the same mean rate.
    Bursty,
}

impl ArrivalModel {
    /// Parses `"fixed"` or `"bursty"`.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidParameter`] for any other name.
    pub fn parse(name: &str) -> Result<ArrivalModel> {
        match name {
            "fixed" => Ok(ArrivalModel::Fixed),
            "bursty" => Ok(ArrivalModel::Bursty),
            other => Err(Error::invalid(
                "arrivals",
                format!("unknown arrival model `{other}` (expected fixed, bursty)"),
            )),
        }
    }

    /// Stable model name.
    #[must_use]
    pub fn as_str(&self) -> &'static str {
        match self {
            ArrivalModel::Fixed => "fixed",
            ArrivalModel::Bursty => "bursty",
        }
    }
}

/// Safety cap on generated requests, so a typo'd rate cannot allocate
/// without bound.
const MAX_REQUESTS: usize = 2_000_000;

/// Decorrelation stream of the load generator's PRNG relative to the base
/// seed (which callers typically share with workload/build seeding).
const LOADGEN_STREAM: u64 = 0x4c6f_6164; // "Load"

/// Deterministic open-loop request-stream generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadGen {
    /// Mean arrival rate, in requests per simulated second.
    pub rate_per_s: f64,
    /// Length of the arrival window, in simulated seconds.
    pub duration_s: f64,
    /// Interarrival model.
    pub model: ArrivalModel,
    /// Base seed; the generator derives its own decorrelated stream.
    pub seed: u64,
}

impl LoadGen {
    /// Checks rate and duration: both must be finite and positive, and the
    /// expected request count must stay under the safety cap.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidParameter`] describing the violated constraint.
    pub fn validate(&self) -> Result<()> {
        if !self.rate_per_s.is_finite() || self.rate_per_s <= 0.0 {
            return Err(Error::invalid(
                "rate",
                format!("must be positive and finite, got {}", self.rate_per_s),
            ));
        }
        if !self.duration_s.is_finite() || self.duration_s <= 0.0 {
            return Err(Error::invalid(
                "duration",
                format!("must be positive and finite, got {}", self.duration_s),
            ));
        }
        if self.rate_per_s * self.duration_s > MAX_REQUESTS as f64 {
            return Err(Error::invalid(
                "rate",
                format!("rate × duration exceeds the {MAX_REQUESTS}-request cap"),
            ));
        }
        Ok(())
    }

    /// Draws the arrival times in `[0, duration_s)`, ascending.
    ///
    /// # Errors
    ///
    /// Propagates [`LoadGen::validate`].
    pub fn arrivals(&self) -> Result<Vec<f64>> {
        self.validate()?;
        let mut rng = seeded(derive_seed(self.seed, LOADGEN_STREAM));
        let mut out = Vec::with_capacity((self.rate_per_s * self.duration_s) as usize + 1);
        let mut t = 0.0f64;
        loop {
            // Inverse-CDF exponential gap: -ln(1 - u) / λ with u ∈ [0, 1).
            let lambda = match self.model {
                ArrivalModel::Fixed => self.rate_per_s,
                ArrivalModel::Bursty => {
                    // Equal-weight hot/cold mixture with mean gap
                    // 0.5·(1/4λ) + 0.5·(7/4λ) = 1/λ.
                    if rng.gen_f64() < 0.5 {
                        4.0 * self.rate_per_s
                    } else {
                        4.0 * self.rate_per_s / 7.0
                    }
                }
            };
            t += -(1.0 - rng.gen_f64()).ln() / lambda;
            if t >= self.duration_s || out.len() >= MAX_REQUESTS {
                break;
            }
            out.push(t);
        }
        Ok(out)
    }

    /// Generates the full typed request stream: arrivals from the
    /// interarrival model, each paired with a query drawn from
    /// `candidates` (a pool of centers with exact k-NN radii) and classed
    /// by `mix`. K-NN requests use neighbor count `k`.
    ///
    /// # Errors
    ///
    /// Propagates [`LoadGen::validate`]; rejects an empty candidate pool,
    /// an invalid `mix`, and `k == 0`.
    pub fn requests(
        &self,
        candidates: &[QueryBall],
        mix: &MixSpec,
        k: usize,
    ) -> Result<Vec<Request>> {
        mix.validate()?;
        if candidates.is_empty() {
            return Err(Error::EmptyInput("query candidate pool"));
        }
        if k == 0 {
            return Err(Error::invalid("k", "k must be positive"));
        }
        let arrivals = self.arrivals()?;
        let mut rng = seeded(derive_seed(self.seed, LOADGEN_STREAM.wrapping_add(1)));
        let mut out = Vec::with_capacity(arrivals.len());
        for (id, arrival_s) in arrivals.into_iter().enumerate() {
            let class = mix.pick(rng.gen_f64());
            let ball = &candidates[rng.gen_range(0..candidates.len())];
            let query = match class {
                "range" => Query::Range {
                    center: ball.center.clone(),
                    radius: ball.radius,
                },
                "knn" => Query::Knn {
                    center: ball.center.clone(),
                    k,
                },
                _ => Query::Predict {
                    center: ball.center.clone(),
                    radius: ball.radius,
                },
            };
            out.push(Request {
                id: id as u64,
                arrival_s,
                query,
            });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(n: usize) -> Vec<QueryBall> {
        (0..n)
            .map(|i| QueryBall::new(vec![i as f32, 2.0 * i as f32], 0.5 + i as f64))
            .collect()
    }

    #[test]
    fn arrivals_are_ascending_in_window_and_deterministic() {
        for model in [ArrivalModel::Fixed, ArrivalModel::Bursty] {
            let gen = LoadGen {
                rate_per_s: 500.0,
                duration_s: 2.0,
                model,
                seed: 9,
            };
            let a = gen.arrivals().unwrap();
            let b = gen.arrivals().unwrap();
            assert_eq!(a, b, "{model:?}");
            assert!(a.windows(2).all(|w| w[0] <= w[1]), "{model:?}");
            assert!(a.iter().all(|&t| (0.0..2.0).contains(&t)), "{model:?}");
            // Mean rate within 20% of nominal at this sample size.
            assert!(
                (a.len() as f64 - 1000.0).abs() < 200.0,
                "{model:?}: {} arrivals",
                a.len()
            );
        }
        // Different seeds decorrelate.
        let base = LoadGen {
            rate_per_s: 500.0,
            duration_s: 2.0,
            model: ArrivalModel::Fixed,
            seed: 9,
        };
        let other = LoadGen { seed: 10, ..base };
        assert_ne!(base.arrivals().unwrap(), other.arrivals().unwrap());
    }

    #[test]
    fn bursty_is_burstier_than_fixed() {
        let cv2 = |gaps: &[f64]| {
            let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
            let var = gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / gaps.len() as f64;
            var / (mean * mean)
        };
        let gaps_of = |model| {
            let a = LoadGen {
                rate_per_s: 1000.0,
                duration_s: 20.0,
                model,
                seed: 3,
            }
            .arrivals()
            .unwrap();
            a.windows(2).map(|w| w[1] - w[0]).collect::<Vec<f64>>()
        };
        let fixed = cv2(&gaps_of(ArrivalModel::Fixed));
        let bursty = cv2(&gaps_of(ArrivalModel::Bursty));
        // Poisson has CV² ≈ 1; the hyperexponential sits near 2.1.
        assert!(fixed < 1.5, "fixed CV² = {fixed}");
        assert!(bursty > fixed + 0.4, "bursty {bursty} vs fixed {fixed}");
    }

    #[test]
    fn requests_follow_the_mix_and_are_deterministic() {
        let gen = LoadGen {
            rate_per_s: 2000.0,
            duration_s: 1.0,
            model: ArrivalModel::Fixed,
            seed: 77,
        };
        let mix = MixSpec::default();
        let reqs = gen.requests(&pool(10), &mix, 7).unwrap();
        assert_eq!(reqs, gen.requests(&pool(10), &mix, 7).unwrap());
        assert!(reqs.len() > 1000);
        // Ids are the arrival order.
        for (i, r) in reqs.iter().enumerate() {
            assert_eq!(r.id, i as u64);
        }
        let count = |class: &str| reqs.iter().filter(|r| r.query.class() == class).count();
        let n = reqs.len() as f64;
        assert!((count("range") as f64 / n - 0.5).abs() < 0.1);
        assert!((count("knn") as f64 / n - 0.3).abs() < 0.1);
        assert!((count("predict") as f64 / n - 0.2).abs() < 0.1);
        // Every knn request carries the configured k.
        assert!(reqs.iter().all(|r| match &r.query {
            Query::Knn { k, .. } => *k == 7,
            _ => true,
        }));
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        let ok = LoadGen {
            rate_per_s: 10.0,
            duration_s: 1.0,
            model: ArrivalModel::Fixed,
            seed: 0,
        };
        assert!(LoadGen {
            rate_per_s: 0.0,
            ..ok
        }
        .validate()
        .is_err());
        assert!(LoadGen {
            rate_per_s: -5.0,
            ..ok
        }
        .validate()
        .is_err());
        assert!(LoadGen {
            rate_per_s: f64::NAN,
            ..ok
        }
        .validate()
        .is_err());
        assert!(LoadGen {
            duration_s: 0.0,
            ..ok
        }
        .validate()
        .is_err());
        assert!(LoadGen {
            duration_s: f64::INFINITY,
            ..ok
        }
        .validate()
        .is_err());
        assert!(LoadGen {
            rate_per_s: 1e9,
            duration_s: 1e9,
            ..ok
        }
        .validate()
        .is_err());
        // Empty candidate pool and k = 0 are rejected by requests().
        assert!(ok.requests(&[], &MixSpec::default(), 3).is_err());
        assert!(ok.requests(&pool(2), &MixSpec::default(), 0).is_err());
        assert!(ArrivalModel::parse("sinusoidal").is_err());
        assert_eq!(ArrivalModel::parse("fixed").unwrap(), ArrivalModel::Fixed);
        assert_eq!(ArrivalModel::parse("bursty").unwrap(), ArrivalModel::Bursty);
    }
}
