//! The serving engine: a built index executing typed request batches on
//! simulated time.
//!
//! # Request path
//!
//! A [`Server`] owns the bulk-loaded index (leaf boxes flattened into a
//! [`LeafSoup`] for the blocked counting kernels) plus the grown upper
//! tree of the paper's sampled cost predictor. Requests arrive in batches;
//! each admitted batch fans out over the [`Pool`] with per-query panic
//! isolation ([`Pool::par_map_isolated`]), then a single-threaded
//! accounting pass advances simulated time. Nothing about latency or fault
//! injection depends on which OS thread ran a query, so the whole run is
//! byte-identical at any `HDIDX_THREADS`.
//!
//! # Simulated time
//!
//! Latency is composed, never measured: each executed query charges its
//! page accesses (directory descent + leaf reads, all random I/O) plus any
//! fault-retry backoff through [`DiskModel::cost_seconds`]. The server is
//! modeled as `concurrency` identical slots; a batch is dispatched to the
//! earliest-free slot once its last request has arrived, and its queries
//! complete sequentially on that slot. A request's latency is its
//! completion time minus its arrival time — queueing delay is where open
//! loops grow tails, and it falls out of the slot algebra for free.

use crate::admission::AdmissionControl;
use crate::latency::{LatencyRecorder, LatencySummary};
use crate::request::{Query, Request};
use hdidx_core::knn::scan_knn_radius;
use hdidx_core::{Dataset, Error, LeafSoup, Result};
use hdidx_diskio::disk::Disk;
use hdidx_diskio::external::{build_on_disk, ExternalConfig};
use hdidx_diskio::model::{DiskModel, IoStats};
use hdidx_diskio::store::DiskOptions;
use hdidx_faults::{FaultConfig, FaultPhase};
use hdidx_model::hupper::recommended_h_upper;
use hdidx_model::upper::build_upper_phase;
use hdidx_pool::Pool;
use hdidx_store::ScrubReport;
use hdidx_vamsplit::topology::Topology;
use hdidx_vamsplit::tree::RTree;

/// Per-run serving knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// Number of parallel service slots in the simulated server.
    pub concurrency: usize,
    /// Requests dispatched per batch.
    pub batch: usize,
    /// Admission backoff budget in simulated seconds
    /// (`f64::INFINITY` disables shedding).
    pub admission_budget_s: f64,
    /// Disk cost model that converts I/O counts into seconds.
    pub disk: DiskModel,
}

impl ServeConfig {
    /// Default knobs: 4 slots, batches of 8, shedding disabled, the
    /// paper's disk.
    #[must_use]
    pub fn new() -> ServeConfig {
        ServeConfig {
            concurrency: 4,
            batch: 8,
            admission_budget_s: f64::INFINITY,
            disk: DiskModel::PAPER,
        }
    }

    /// Checks the knobs: at least one slot, at least one request per
    /// batch, a positive admission budget.
    ///
    /// # Errors
    ///
    /// [`hdidx_core::Error::InvalidParameter`] describing the violation.
    pub fn validate(&self) -> Result<()> {
        if self.concurrency == 0 {
            return Err(Error::invalid("concurrency", "must be at least 1"));
        }
        if self.batch == 0 {
            return Err(Error::invalid("batch", "must be at least 1"));
        }
        if self.admission_budget_s.is_nan() || self.admission_budget_s <= 0.0 {
            return Err(Error::invalid(
                "admission-budget",
                format!(
                    "must be positive (or infinite to disable), got {}",
                    self.admission_budget_s
                ),
            ));
        }
        Ok(())
    }
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig::new()
    }
}

/// Outcome of executing one request (before time accounting).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ExecResult {
    /// Leaf pages the query read (or would read).
    leaf_accesses: u64,
    /// I/O charged, including fault retries and backoff.
    io: IoStats,
    /// False when the query failed (exhausted retries or panicked).
    ok: bool,
}

impl ExecResult {
    fn failed() -> ExecResult {
        ExecResult {
            leaf_accesses: 0,
            io: IoStats::default(),
            ok: false,
        }
    }
}

/// Aggregate outcome of one serving run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Requests offered by the load generator.
    pub total: u64,
    /// Requests admitted and executed.
    pub executed: u64,
    /// Requests shed by admission control.
    pub shed: u64,
    /// Executed requests that failed (retry exhaustion or worker panic).
    pub failed: u64,
    /// Per-query latency samples (simulated seconds), completion order.
    pub samples: Vec<f64>,
    /// Exact nearest-rank percentile summary (`None` when nothing ran).
    pub summary: Option<LatencySummary>,
    /// Total I/O charged across all executed requests.
    pub io: IoStats,
    /// Total charged retry backoff, in simulated seconds.
    pub backoff_s: f64,
    /// Simulated completion time of the last request.
    pub makespan_s: f64,
    /// Fraction of offered requests shed.
    pub shed_fraction: f64,
    /// FNV-1a digest of the latency sample stream (byte-identity check).
    pub digest: u64,
}

/// A query server over a built index.
///
/// Holds the dataset by reference, the bulk-loaded tree, the SoA leaf soup
/// the range/k-NN path counts against, and the grown upper-tree soup the
/// predict path counts against.
#[derive(Debug, Clone)]
pub struct Server<'a> {
    data: &'a Dataset,
    tree: RTree,
    leaf_soup: LeafSoup,
    predict_soup: LeafSoup,
    build_io: IoStats,
    faults: Option<FaultConfig>,
    height: usize,
}

impl<'a> Server<'a> {
    /// Builds the on-disk index under the external-memory builder (with
    /// `m` points of working memory), flattens its leaves, and builds the
    /// grown upper tree at the recommended cut for the same budget. With
    /// `faults` set, the build itself runs under the plan's build phase
    /// and queries will replay through per-request query-phase plans.
    ///
    /// # Errors
    ///
    /// Propagates builder and upper-phase errors (shape mismatches,
    /// infeasible `m`).
    pub fn build(
        data: &'a Dataset,
        topo: &Topology,
        m: usize,
        seed: u64,
        faults: Option<FaultConfig>,
    ) -> Result<Server<'a>> {
        let mut cfg = ExternalConfig::with_mem_points(m)?;
        cfg.faults = faults;
        let built = build_on_disk(data, topo, &cfg)?;
        let leaf_soup = LeafSoup::from_rects(topo.dim(), &built.tree.leaf_rects())?;
        let h_upper = recommended_h_upper(topo, m)?;
        let up = build_upper_phase(data, topo, m, h_upper, seed)?;
        let predict_soup = up.grown_soup()?;
        let height = built.tree.height();
        Ok(Server {
            data,
            tree: built.tree,
            leaf_soup,
            predict_soup,
            build_io: built.io,
            faults,
            height,
        })
    }

    /// Adopts an already-built `tree` — e.g. one loaded back from a
    /// persistent page store — instead of building one. The soups and the
    /// grown upper tree are reconstructed exactly as [`Server::build`]
    /// does, so a server over a loaded tree serves range / k-NN / predict
    /// queries identically to the server that persisted it (pinned by the
    /// file-backend round-trip tests). `build_io` is whatever the caller
    /// wants reported — typically the I/O charged loading the snapshot.
    ///
    /// `scrub` is the [`ScrubReport`] of the generation the tree was
    /// loaded from, when the caller ran a scrub-and-repair pass first.
    /// A report with quarantined pages is refused: quarantining zeroes
    /// a page nothing could re-materialize, so even a tree that *loads*
    /// may silently misreport data — serving it would turn detected
    /// corruption into wrong answers.
    ///
    /// # Errors
    ///
    /// Propagates soup and upper-phase errors (shape mismatches,
    /// infeasible `m`); refuses a scrub report with quarantined pages.
    #[allow(clippy::too_many_arguments)]
    pub fn from_tree(
        data: &'a Dataset,
        topo: &Topology,
        tree: RTree,
        m: usize,
        seed: u64,
        faults: Option<FaultConfig>,
        build_io: IoStats,
        scrub: Option<&ScrubReport>,
    ) -> Result<Server<'a>> {
        if let Some(report) = scrub {
            if report.pages_quarantined > 0 {
                return Err(Error::StoreFailure {
                    op: "serve reopen",
                    detail: format!(
                        "refusing to serve generation {:?}: scrub quarantined {} of {} pages",
                        report.generation, report.pages_quarantined, report.pages_scanned
                    ),
                });
            }
        }
        let leaf_soup = LeafSoup::from_rects(topo.dim(), &tree.leaf_rects())?;
        let h_upper = recommended_h_upper(topo, m)?;
        let up = build_upper_phase(data, topo, m, h_upper, seed)?;
        let predict_soup = up.grown_soup()?;
        let height = tree.height();
        Ok(Server {
            data,
            tree,
            leaf_soup,
            predict_soup,
            build_io,
            faults,
            height,
        })
    }

    /// The bulk-loaded index.
    #[must_use]
    pub fn tree(&self) -> &RTree {
        &self.tree
    }

    /// I/O consumed building the index (including build-phase faults).
    #[must_use]
    pub fn build_io(&self) -> IoStats {
        self.build_io
    }

    /// Executes one request: resolves its leaf-access count through the
    /// counting kernels, then charges the page accesses (directory descent
    /// plus leaves, all random I/O) — through a per-request fault plan when
    /// faults are configured.
    fn execute(&self, req: &Request) -> ExecResult {
        let (leaf_accesses, disk_backed) = match &req.query {
            Query::Range { center, radius } => (
                self.leaf_soup.count_intersecting(center, radius * radius),
                true,
            ),
            Query::Knn { center, k } => match scan_knn_radius(self.data, center, *k) {
                Ok(r) => (self.leaf_soup.count_intersecting(center, r * r), true),
                Err(_) => return ExecResult::failed(),
            },
            // The paper's sampled estimate is entirely in-memory: count
            // against the grown upper leaves, charge no I/O.
            Query::Predict { center, radius } => (
                self.predict_soup
                    .count_intersecting(center, radius * radius),
                false,
            ),
        };
        if !disk_backed {
            return ExecResult {
                leaf_accesses,
                io: IoStats::default(),
                ok: true,
            };
        }
        // Every accessed page — (height - 1) directory pages on the
        // descent plus the leaves — is one random access, matching the
        // on-disk measurement model.
        let pages = leaf_accesses + (self.height.saturating_sub(1)) as u64;
        match self.faults {
            None => ExecResult {
                leaf_accesses,
                io: IoStats::random(pages),
                ok: true,
            },
            Some(fcfg) => {
                // Replay the random accesses through a scratch disk whose
                // fault plan is derived from the request id: which pages
                // fault is a pure function of (fault seed, request id),
                // never of scheduling. Alternating between two
                // non-adjacent pages makes each access cost exactly one
                // seek and one transfer, identical to `IoStats::random`,
                // while `Disk::access` retry accounting applies unchanged.
                let mut disk = Disk::with_options(
                    &DiskOptions::new()
                        .fault_plan(Some(fcfg))
                        .phase(FaultPhase::Query)
                        .derived(req.id),
                );
                let file = match disk.alloc(4) {
                    Ok(f) => f,
                    Err(_) => return ExecResult::failed(),
                };
                let mut flip = 0u64;
                let mut ok = true;
                for _ in 0..pages {
                    if disk.access(&file, flip, 1).is_err() {
                        // Retries exhausted: the request fails, but the
                        // seeks and backoff already burned stay charged.
                        ok = false;
                        break;
                    }
                    flip = 2 - flip;
                }
                ExecResult {
                    leaf_accesses,
                    io: disk.stats(),
                    ok,
                }
            }
        }
    }

    /// Serves an arrival-ordered request stream and accounts latency on
    /// simulated time (see the module docs for the queueing model).
    ///
    /// # Errors
    ///
    /// Propagates [`ServeConfig::validate`].
    pub fn run(&self, requests: &[Request], cfg: &ServeConfig, pool: &Pool) -> Result<ServeReport> {
        cfg.validate()?;
        let mut admission = AdmissionControl::new(cfg.admission_budget_s);
        let mut recorder = LatencyRecorder::new();
        let mut free_at = vec![0.0f64; cfg.concurrency];
        let mut io = IoStats::default();
        let mut failed = 0u64;
        let mut makespan_s = 0.0f64;
        for batch in requests.chunks(cfg.batch) {
            // The admission decision precedes execution and depends only
            // on the window state left by earlier batches — deterministic
            // because batches are accounted in arrival order.
            if !admission.admit_batch(batch.len()) {
                continue;
            }
            let results = pool.par_map_isolated(batch, |req| self.execute(req));
            // Single-threaded time accounting: dispatch the batch to the
            // earliest-free slot (lowest index on ties) once its last
            // request has arrived.
            let ready = batch.last().map_or(0.0, |r| r.arrival_s);
            let slot = (0..free_at.len())
                .min_by(|&a, &b| free_at[a].total_cmp(&free_at[b]))
                .unwrap_or(0);
            let mut t = free_at[slot].max(ready);
            for (req, res) in batch.iter().zip(results) {
                // A worker panic is a failed request, not a failed run.
                let res = res.unwrap_or_else(|_| ExecResult::failed());
                t += cfg.disk.cost_seconds(res.io);
                recorder.record(t - req.arrival_s);
                admission.observe(res.io.backoff as f64 * cfg.disk.t_seek_s);
                io += res.io;
                if !res.ok {
                    failed += 1;
                }
            }
            free_at[slot] = t;
            makespan_s = makespan_s.max(t);
        }
        Ok(ServeReport {
            total: requests.len() as u64,
            executed: admission.admitted(),
            shed: admission.shed(),
            failed,
            summary: recorder.summary(),
            digest: recorder.digest(),
            samples: recorder.samples().to_vec(),
            io,
            backoff_s: io.backoff as f64 * cfg.disk.t_seek_s,
            makespan_s,
            shed_fraction: admission.shed_fraction(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loadgen::{ArrivalModel, LoadGen};
    use crate::request::MixSpec;
    use hdidx_core::rng::{seeded, Rng};

    fn random_dataset(n: usize, dim: usize, seed: u64) -> Dataset {
        let mut rng = seeded(seed);
        Dataset::from_flat(dim, (0..n * dim).map(|_| rng.gen::<f32>()).collect()).unwrap()
    }

    fn fixture() -> (Dataset, Topology) {
        let data = random_dataset(2000, 4, 61);
        let topo = Topology::from_capacities(4, 2000, 10, 5).unwrap();
        (data, topo)
    }

    fn stream(data: &Dataset, seed: u64) -> Vec<Request> {
        let candidates: Vec<hdidx_model::QueryBall> = (0..16)
            .map(|i| hdidx_model::QueryBall::new(data.point(i * 100).to_vec(), 0.3))
            .collect();
        LoadGen {
            rate_per_s: 400.0,
            duration_s: 0.5,
            model: ArrivalModel::Bursty,
            seed,
        }
        .requests(&candidates, &MixSpec::default(), 5)
        .unwrap()
    }

    #[test]
    fn serves_a_stream_and_reports_latencies() {
        let (data, topo) = fixture();
        let server = Server::build(&data, &topo, 400, 7, None).unwrap();
        let reqs = stream(&data, 7);
        let report = server
            .run(&reqs, &ServeConfig::new(), &Pool::serial())
            .unwrap();
        assert_eq!(report.total, reqs.len() as u64);
        assert_eq!(report.executed, report.total);
        assert_eq!(report.shed, 0);
        assert_eq!(report.failed, 0);
        assert_eq!(report.samples.len(), reqs.len());
        let s = report.summary.unwrap();
        assert!(s.p50_s >= 0.0 && s.p50_s <= s.p95_s && s.p95_s <= s.p99_s);
        assert!(s.max_s <= report.makespan_s + 1e-12);
        // All latencies non-negative; disk-backed queries charge I/O.
        assert!(report.samples.iter().all(|&l| l >= 0.0));
        assert!(report.io.seeks > 0);
        assert_eq!(report.backoff_s, 0.0);
    }

    #[test]
    fn more_slots_cannot_increase_latency() {
        let (data, topo) = fixture();
        let server = Server::build(&data, &topo, 400, 7, None).unwrap();
        let reqs = stream(&data, 8);
        let pool = Pool::serial();
        let narrow = server
            .run(
                &reqs,
                &ServeConfig {
                    concurrency: 1,
                    ..ServeConfig::new()
                },
                &pool,
            )
            .unwrap();
        let wide = server
            .run(
                &reqs,
                &ServeConfig {
                    concurrency: 8,
                    ..ServeConfig::new()
                },
                &pool,
            )
            .unwrap();
        let (n, w) = (narrow.summary.unwrap(), wide.summary.unwrap());
        assert!(w.p99_s <= n.p99_s + 1e-12, "wide {w:?} vs narrow {n:?}");
        assert!(w.mean_s <= n.mean_s + 1e-12);
        // Same work, same I/O — only queueing changes.
        assert_eq!(narrow.io, wide.io);
    }

    #[test]
    fn faulted_serving_shelters_determinism_and_sheds() {
        let (data, topo) = fixture();
        let fcfg = FaultConfig::disabled(3)
            .with_rate_ppm(300_000)
            .with_retry(hdidx_faults::RetryPolicy::Exponential)
            .with_phase_scale(FaultPhase::Build, 0);
        let server = Server::build(&data, &topo, 400, 7, Some(fcfg)).unwrap();
        let reqs = stream(&data, 9);
        let cfg = ServeConfig {
            admission_budget_s: 0.05,
            ..ServeConfig::new()
        };
        let pool = Pool::serial();
        let a = server.run(&reqs, &cfg, &pool).unwrap();
        let b = server.run(&reqs, &cfg, &pool).unwrap();
        assert_eq!(a, b, "faulted serving must be reproducible");
        assert!(a.io.retries > 0, "fault rate must trigger retries");
        assert!(a.backoff_s > 0.0);
        assert!(a.shed > 0, "budget 50 ms must shed under this fault rate");
        assert!(a.shed_fraction > 0.0);
        assert_eq!(a.executed + a.shed, a.total);
        // Shed requests record no latency.
        assert_eq!(a.samples.len() as u64, a.executed);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let (data, topo) = fixture();
        let server = Server::build(&data, &topo, 400, 7, None).unwrap();
        let reqs = stream(&data, 7);
        let pool = Pool::serial();
        let bad = |cfg: ServeConfig| server.run(&reqs, &cfg, &pool).is_err();
        assert!(bad(ServeConfig {
            concurrency: 0,
            ..ServeConfig::new()
        }));
        assert!(bad(ServeConfig {
            batch: 0,
            ..ServeConfig::new()
        }));
        assert!(bad(ServeConfig {
            admission_budget_s: 0.0,
            ..ServeConfig::new()
        }));
        assert!(bad(ServeConfig {
            admission_budget_s: f64::NAN,
            ..ServeConfig::new()
        }));
    }
}
