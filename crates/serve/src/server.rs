//! The serving engine: a built index executing typed request batches on
//! simulated time.
//!
//! # Request path
//!
//! A [`Server`] owns the bulk-loaded index (leaf boxes flattened into a
//! [`LeafSoup`] for the blocked counting kernels) plus the grown upper
//! tree of the paper's sampled cost predictor. Requests arrive in batches;
//! each admitted batch fans out over the [`Pool`] with per-query panic
//! isolation ([`Pool::par_map_isolated`]), then a single-threaded
//! accounting pass advances simulated time. Nothing about latency or fault
//! injection depends on which OS thread ran a query, so the whole run is
//! byte-identical at any `HDIDX_THREADS`.
//!
//! # Simulated time
//!
//! Latency is composed, never measured: each executed query charges its
//! page accesses (directory descent + leaf reads, all random I/O) plus any
//! fault-retry backoff through [`DiskModel::cost_seconds`]. The server is
//! modeled as `concurrency` identical slots; a batch is dispatched to the
//! earliest-free slot once its last request has arrived, and its queries
//! complete sequentially on that slot. A request's latency is its
//! completion time minus its arrival time — queueing delay is where open
//! loops grow tails, and it falls out of the slot algebra for free.
//!
//! # Overload control
//!
//! The [`OverloadPolicy`] layers four deterministic mechanisms on top,
//! every one off by default ([`OverloadPolicy::none`] runs byte-identical
//! to a server that predates the subsystem):
//!
//! * **Deadlines** cap a query's charged *service* cost per class. A cut
//!   range/k-NN query keeps what it already read charged; a cut predict
//!   switches to the *priced* sample scan and answers from cutoff
//!   extrapolation over the prefix it covered (degraded, never failed).
//! * **Lanes** shed per class on a feed-forward pressure signal: a shadow
//!   pass of the slot algebra over the *offered* stream prices every
//!   request's queue delay, and a class whose sliding-window mean exceeds
//!   its budget sheds. Decisions never depend on earlier sheds, so they
//!   are thread-invariant and monotone in the budget.
//! * **Breaker**: a [`CircuitBreaker`] clocked by the monotone envelope
//!   of slot times gates the disk-backed classes; while open they fail
//!   fast (charging nothing), while predictions keep serving from memory.
//! * **Hedged replays**: a faulted replay straggling past the hedge delay
//!   re-issues against a derived fault stream; both attempts stay
//!   charged, the earlier completion wins.
//!
//! [`Maintenance`] rides in the same loop: idle gaps in the slot algebra
//! run incremental scrub slices, whose findings drive the
//! Healthy → Degraded → ReadOnly health machine gating admission.

use crate::admission::{AdmissionControl, LaneState};
use crate::latency::{LatencyRecorder, LatencySummary};
use crate::maintain::{HealthState, Maintenance, MaintenanceReport};
use crate::overload::OverloadPolicy;
use crate::request::{Query, QueryClass, Request};
use hdidx_core::knn::scan_knn_radius;
use hdidx_core::{Dataset, Error, LeafSoup, Result};
use hdidx_diskio::breaker::CircuitBreaker;
use hdidx_diskio::disk::Disk;
use hdidx_diskio::external::{build_on_disk, ExternalConfig};
use hdidx_diskio::model::{DiskModel, IoStats};
use hdidx_diskio::store::DiskOptions;
use hdidx_diskio::BreakerState;
use hdidx_faults::{FaultConfig, FaultPhase};
use hdidx_model::hupper::recommended_h_upper;
use hdidx_model::upper::build_upper_phase;
use hdidx_model::DegradedReport;
use hdidx_pool::Pool;
use hdidx_store::ScrubReport;
use hdidx_vamsplit::topology::Topology;
use hdidx_vamsplit::tree::RTree;

/// Stream offset separating a hedged replay's fault stream from every
/// primary stream (request ids are dense from 0, far below this).
const HEDGE_STREAM_OFFSET: u64 = 1 << 32;

/// Entries per page of the priced predict sample scan (matches the soup
/// kernels' block size).
const PREDICT_SCAN_BLOCK: u64 = 64;

/// Per-run serving knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// Number of parallel service slots in the simulated server.
    pub concurrency: usize,
    /// Requests dispatched per batch.
    pub batch: usize,
    /// Admission backoff budget in simulated seconds
    /// (`f64::INFINITY` disables shedding).
    pub admission_budget_s: f64,
    /// Sliding-window length of the backoff-budget admission controller.
    pub admission_window: usize,
    /// Overload-control policy (defaults to [`OverloadPolicy::none`]).
    pub overload: OverloadPolicy,
    /// Disk cost model that converts I/O counts into seconds.
    pub disk: DiskModel,
}

impl ServeConfig {
    /// Default knobs: 4 slots, batches of 8, shedding disabled, no
    /// overload policy, the paper's disk.
    #[must_use]
    pub fn new() -> ServeConfig {
        ServeConfig {
            concurrency: 4,
            batch: 8,
            admission_budget_s: f64::INFINITY,
            admission_window: AdmissionControl::DEFAULT_WINDOW,
            overload: OverloadPolicy::none(),
            disk: DiskModel::PAPER,
        }
    }

    /// Checks the knobs: at least one slot, at least one request per
    /// batch, a positive admission budget, a non-empty admission window,
    /// and a valid overload policy.
    ///
    /// # Errors
    ///
    /// [`hdidx_core::Error::InvalidParameter`] describing the violation.
    pub fn validate(&self) -> Result<()> {
        if self.concurrency == 0 {
            return Err(Error::invalid("concurrency", "must be at least 1"));
        }
        if self.batch == 0 {
            return Err(Error::invalid("batch", "must be at least 1"));
        }
        if self.admission_budget_s.is_nan() || self.admission_budget_s <= 0.0 {
            return Err(Error::invalid(
                "admission-budget",
                format!(
                    "must be positive (or infinite to disable), got {}",
                    self.admission_budget_s
                ),
            ));
        }
        if self.admission_window == 0 {
            return Err(Error::invalid(
                "admission-window",
                "window must be at least 1 charge",
            ));
        }
        self.overload.validate()
    }
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig::new()
    }
}

/// Outcome of executing one request (before time accounting).
#[derive(Debug, Clone, Copy, PartialEq)]
struct ExecResult {
    /// Leaf pages the query read (or, for a degraded predict, estimated).
    leaf_accesses: u64,
    /// I/O charged, including fault retries, backoff and hedged attempts.
    io: IoStats,
    /// Simulated seconds the request occupies its slot. Equals
    /// `disk.cost_seconds(io)` except for hedged replays, where the
    /// earlier completion wins but both attempts' I/O stays charged.
    service_s: f64,
    /// False when the query failed (exhausted retries or panicked).
    ok: bool,
    /// True when a deadline cut the query short.
    cut: bool,
    /// True when a predict answered from cutoff extrapolation.
    degraded: bool,
    /// Fraction of the predict sample scanned (1.0 when not degraded).
    coverage: f64,
    /// True when a hedged replay was issued; `hedge_won` when the hedge's
    /// completion was adopted.
    hedged: bool,
    hedge_won: bool,
    /// True for classes that touch the page store (range, k-NN).
    disk_backed: bool,
}

impl ExecResult {
    fn failed() -> ExecResult {
        ExecResult {
            leaf_accesses: 0,
            io: IoStats::default(),
            service_s: 0.0,
            ok: false,
            cut: false,
            degraded: false,
            coverage: 1.0,
            hedged: false,
            hedge_won: false,
            disk_backed: false,
        }
    }
}

/// Per-class slice of a serving run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassStats {
    /// The class the row describes.
    pub class: QueryClass,
    /// Requests of this class admitted and executed.
    pub executed: u64,
    /// Requests of this class shed (lanes, batch admission, or health).
    pub shed: u64,
    /// Executed requests of this class that failed.
    pub failed: u64,
    /// Executed requests cut short by their deadline.
    pub deadline_cut: u64,
    /// Executed requests answered from a degraded fallback.
    pub degraded: u64,
    /// Percentile summary of this class's latency samples.
    pub summary: Option<LatencySummary>,
    /// FNV-1a digest of this class's latency sample stream.
    pub digest: u64,
}

/// Breaker observables of one serving run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerSummary {
    /// Closed→Open transitions.
    pub trips: u64,
    /// Requests refused while open.
    pub fast_fails: u64,
    /// State at the end of the run.
    pub state: BreakerState,
    /// FNV-1a digest of the transition trajectory (times + states).
    pub digest: u64,
}

/// Aggregate outcome of one serving run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Requests offered by the load generator.
    pub total: u64,
    /// Requests admitted and executed.
    pub executed: u64,
    /// Requests shed (admission budget, lanes, or read-only health).
    pub shed: u64,
    /// Executed requests that failed (retry exhaustion, worker panic, or
    /// breaker fast-fail).
    pub failed: u64,
    /// Per-query latency samples (simulated seconds), completion order.
    pub samples: Vec<f64>,
    /// Exact nearest-rank percentile summary (`None` when nothing ran).
    pub summary: Option<LatencySummary>,
    /// Total I/O charged across all executed requests.
    pub io: IoStats,
    /// Total charged retry backoff, in simulated seconds.
    pub backoff_s: f64,
    /// Simulated completion time of the last request.
    pub makespan_s: f64,
    /// Fraction of offered requests shed.
    pub shed_fraction: f64,
    /// FNV-1a digest of the latency sample stream (byte-identity check).
    pub digest: u64,
    /// Per-class accounting, indexed by [`QueryClass::index`].
    pub by_class: [ClassStats; QueryClass::COUNT],
    /// Executed requests cut short by a deadline.
    pub deadline_cut: u64,
    /// Hedged replays issued / adopted.
    pub hedged: u64,
    /// Hedged replays whose completion won.
    pub hedge_wins: u64,
    /// Degradation summary over predict queries: fallback count plus mean
    /// scan coverage (the PR 3 graceful-degradation shape).
    pub degraded: DegradedReport,
    /// Breaker observables (`None` when no breaker was configured).
    pub breaker: Option<BreakerSummary>,
    /// Store health at the end of the run (`None` without maintenance).
    pub health: Option<HealthState>,
    /// Idle-slot maintenance accounting (`None` without maintenance).
    pub maintenance: Option<MaintenanceReport>,
    /// Geometry-kernel ISA the run dispatched to
    /// ([`hdidx_core::simd::active`]). Observability only: every ISA
    /// produces byte-identical samples and digests.
    pub isa: &'static str,
}

/// A query server over a built index.
///
/// Holds the dataset by reference, the bulk-loaded tree, the SoA leaf soup
/// the range/k-NN path counts against, and the grown upper-tree soup the
/// predict path counts against.
#[derive(Debug, Clone)]
pub struct Server<'a> {
    data: &'a Dataset,
    tree: RTree,
    leaf_soup: LeafSoup,
    predict_soup: LeafSoup,
    build_io: IoStats,
    faults: Option<FaultConfig>,
    height: usize,
}

impl<'a> Server<'a> {
    /// Builds the on-disk index under the external-memory builder (with
    /// `m` points of working memory), flattens its leaves, and builds the
    /// grown upper tree at the recommended cut for the same budget. With
    /// `faults` set, the build itself runs under the plan's build phase
    /// and queries will replay through per-request query-phase plans.
    ///
    /// # Errors
    ///
    /// Propagates builder and upper-phase errors (shape mismatches,
    /// infeasible `m`).
    pub fn build(
        data: &'a Dataset,
        topo: &Topology,
        m: usize,
        seed: u64,
        faults: Option<FaultConfig>,
    ) -> Result<Server<'a>> {
        let mut cfg = ExternalConfig::with_mem_points(m)?;
        cfg.faults = faults;
        let built = build_on_disk(data, topo, &cfg)?;
        let leaf_soup = LeafSoup::from_rects(topo.dim(), &built.tree.leaf_rects())?;
        let h_upper = recommended_h_upper(topo, m)?;
        let up = build_upper_phase(data, topo, m, h_upper, seed)?;
        let predict_soup = up.grown_soup()?;
        let height = built.tree.height();
        Ok(Server {
            data,
            tree: built.tree,
            leaf_soup,
            predict_soup,
            build_io: built.io,
            faults,
            height,
        })
    }

    /// Adopts an already-built `tree` — e.g. one loaded back from a
    /// persistent page store — instead of building one. The soups and the
    /// grown upper tree are reconstructed exactly as [`Server::build`]
    /// does, so a server over a loaded tree serves range / k-NN / predict
    /// queries identically to the server that persisted it (pinned by the
    /// file-backend round-trip tests). `build_io` is whatever the caller
    /// wants reported — typically the I/O charged loading the snapshot.
    ///
    /// `scrub` is the [`ScrubReport`] of the generation the tree was
    /// loaded from, when the caller ran a scrub-and-repair pass first.
    /// A report with quarantined pages is refused: quarantining zeroes
    /// a page nothing could re-materialize, so even a tree that *loads*
    /// may silently misreport data — serving it would turn detected
    /// corruption into wrong answers.
    ///
    /// # Errors
    ///
    /// Propagates soup and upper-phase errors (shape mismatches,
    /// infeasible `m`); refuses a scrub report with quarantined pages.
    #[allow(clippy::too_many_arguments)]
    pub fn from_tree(
        data: &'a Dataset,
        topo: &Topology,
        tree: RTree,
        m: usize,
        seed: u64,
        faults: Option<FaultConfig>,
        build_io: IoStats,
        scrub: Option<&ScrubReport>,
    ) -> Result<Server<'a>> {
        if let Some(report) = scrub {
            if report.pages_quarantined > 0 {
                return Err(Error::StoreFailure {
                    op: "serve reopen",
                    detail: format!(
                        "refusing to serve generation {:?}: scrub quarantined {} of {} pages",
                        report.generation, report.pages_quarantined, report.pages_scanned
                    ),
                });
            }
        }
        let leaf_soup = LeafSoup::from_rects(topo.dim(), &tree.leaf_rects())?;
        let h_upper = recommended_h_upper(topo, m)?;
        let up = build_upper_phase(data, topo, m, h_upper, seed)?;
        let predict_soup = up.grown_soup()?;
        let height = tree.height();
        Ok(Server {
            data,
            tree,
            leaf_soup,
            predict_soup,
            build_io,
            faults,
            height,
        })
    }

    /// The bulk-loaded index.
    #[must_use]
    pub fn tree(&self) -> &RTree {
        &self.tree
    }

    /// I/O consumed building the index (including build-phase faults).
    #[must_use]
    pub fn build_io(&self) -> IoStats {
        self.build_io
    }

    /// Replays `pages` random accesses through a scratch disk whose fault
    /// plan is derived from `stream`: which pages fault is a pure function
    /// of (fault seed, stream), never of scheduling. Alternating between
    /// two non-adjacent pages makes each access cost exactly one seek and
    /// one transfer, identical to `IoStats::random`, while `Disk::access`
    /// retry accounting applies unchanged. The replay stops early when the
    /// accumulated charged cost crosses `deadline_s` (the crossing access
    /// stays charged) or when an access exhausts its retries (the seeks
    /// and backoff already burned stay charged).
    ///
    /// Returns the charged stats, completed-access count, success flag,
    /// and whether the deadline cut the replay.
    fn replay(
        &self,
        fcfg: &FaultConfig,
        stream: u64,
        pages: u64,
        deadline_s: f64,
        disk_model: &DiskModel,
    ) -> (IoStats, u64, bool, bool) {
        let mut disk = Disk::with_options(
            &DiskOptions::new()
                .fault_plan(Some(*fcfg))
                .phase(FaultPhase::Query)
                .derived(stream),
        );
        let file = match disk.alloc(4) {
            Ok(f) => f,
            Err(_) => return (IoStats::default(), 0, false, false),
        };
        let mut flip = 0u64;
        let mut done = 0u64;
        let mut ok = true;
        let mut cut = false;
        for _ in 0..pages {
            if disk.access(&file, flip, 1).is_err() {
                ok = false;
                break;
            }
            flip = 2 - flip;
            done += 1;
            if deadline_s.is_finite() && disk_model.cost_seconds(disk.stats()) > deadline_s {
                cut = done < pages;
                break;
            }
        }
        (disk.stats(), done, ok, cut)
    }

    /// Executes a disk-backed query of `pages` random accesses under the
    /// class deadline and (on the faulted path) the hedge policy.
    fn run_disk_query(
        &self,
        req: &Request,
        cfg: &ServeConfig,
        leaf_accesses: u64,
        deadline_s: f64,
    ) -> ExecResult {
        let pages = leaf_accesses + (self.height.saturating_sub(1)) as u64;
        let Some(fcfg) = self.faults else {
            // Clean path: every access costs exactly one seek + transfer,
            // so the deadline translates to a whole-page allowance.
            let per_page = cfg.disk.t_seek_s + cfg.disk.t_xfer_s();
            let allowed = if deadline_s.is_finite() {
                ((deadline_s / per_page).floor() as u64).min(pages)
            } else {
                pages
            };
            let io = IoStats::random(allowed);
            return ExecResult {
                leaf_accesses,
                io,
                service_s: cfg.disk.cost_seconds(io),
                ok: true,
                cut: allowed < pages,
                degraded: false,
                coverage: 1.0,
                hedged: false,
                hedge_won: false,
                disk_backed: true,
            };
        };
        let (pio, _, pok, pcut) = self.replay(&fcfg, req.id, pages, deadline_s, &cfg.disk);
        let primary_s = cfg.disk.cost_seconds(pio);
        let hedge_s = cfg.overload.hedge_s;
        if hedge_s.is_infinite() || (pok && primary_s <= hedge_s) {
            return ExecResult {
                leaf_accesses,
                io: pio,
                service_s: primary_s,
                ok: pok,
                cut: pcut,
                degraded: false,
                coverage: 1.0,
                hedged: false,
                hedge_won: false,
                disk_backed: true,
            };
        }
        // The primary straggled past the hedge delay (or failed): re-issue
        // against a derived stream — the snapshot generation's replica.
        // Both attempts stay charged; the earlier completion wins.
        let sec_deadline = if deadline_s.is_finite() {
            (deadline_s - hedge_s).max(0.0)
        } else {
            deadline_s
        };
        let (sio, _, sok, scut) = self.replay(
            &fcfg,
            req.id + HEDGE_STREAM_OFFSET,
            pages,
            sec_deadline,
            &cfg.disk,
        );
        let sec_total = hedge_s + cfg.disk.cost_seconds(sio);
        let mut io = pio;
        io += sio;
        if pok && (primary_s <= sec_total || !sok) {
            ExecResult {
                leaf_accesses,
                io,
                service_s: primary_s,
                ok: true,
                cut: pcut,
                degraded: false,
                coverage: 1.0,
                hedged: true,
                hedge_won: false,
                disk_backed: true,
            }
        } else if sok {
            ExecResult {
                leaf_accesses,
                io,
                service_s: sec_total,
                ok: true,
                cut: scut,
                degraded: false,
                coverage: 1.0,
                hedged: true,
                hedge_won: true,
                disk_backed: true,
            }
        } else {
            ExecResult {
                leaf_accesses,
                io,
                service_s: primary_s.max(sec_total),
                ok: false,
                cut: pcut || scut,
                degraded: false,
                coverage: 1.0,
                hedged: true,
                hedge_won: false,
                disk_backed: true,
            }
        }
    }

    /// Executes a predict under a **finite** deadline: the *priced* mode.
    ///
    /// Instead of the free in-memory count, the prediction charges the
    /// sample-scan reads it models — `ceil(len / 64)` pages over the grown
    /// upper soup. When the deadline (or a fault) cuts the scan, the
    /// prefix actually covered is counted exactly and scaled by the
    /// uncovered fraction — the same cutoff extrapolation PR 3's
    /// degradation fallback uses — and the answer is degraded, never
    /// failed: predictions are what keeps serving when the store cannot.
    fn run_priced_predict(
        &self,
        req: &Request,
        cfg: &ServeConfig,
        center: &[f32],
        r2: f64,
        deadline_s: f64,
    ) -> ExecResult {
        let len = self.predict_soup.len() as u64;
        let total_pages = len.div_ceil(PREDICT_SCAN_BLOCK);
        let (io, done, cut) = match self.faults {
            None => {
                let per_page = cfg.disk.t_seek_s + cfg.disk.t_xfer_s();
                let allowed = ((deadline_s / per_page).floor() as u64).min(total_pages);
                (IoStats::random(allowed), allowed, allowed < total_pages)
            }
            Some(fcfg) => {
                // A failed access is a cutoff too: the prediction answers
                // from whatever prefix it covered.
                let (io, done, ok, cut) =
                    self.replay(&fcfg, req.id, total_pages, deadline_s, &cfg.disk);
                (io, done, cut || !ok)
            }
        };
        let (estimate, coverage, degraded) = if cut {
            let scanned = (done * PREDICT_SCAN_BLOCK).min(len);
            let prefix = self
                .predict_soup
                .count_intersecting_prefix(center, r2, scanned as usize);
            let estimate = if scanned == 0 {
                0
            } else {
                (prefix as f64 * len as f64 / scanned as f64).round() as u64
            };
            let coverage = if len == 0 {
                1.0
            } else {
                scanned as f64 / len as f64
            };
            (estimate, coverage, true)
        } else {
            (self.predict_soup.count_intersecting(center, r2), 1.0, false)
        };
        ExecResult {
            leaf_accesses: estimate,
            io,
            service_s: cfg.disk.cost_seconds(io),
            ok: true,
            cut,
            degraded,
            coverage,
            hedged: false,
            hedge_won: false,
            disk_backed: false,
        }
    }

    /// Executes one request: resolves its leaf-access count through the
    /// counting kernels, then charges the page accesses (directory descent
    /// plus leaves, all random I/O) — through a per-request fault plan when
    /// faults are configured, under the class deadline and hedge policy
    /// when one is set.
    fn execute(&self, req: &Request, cfg: &ServeConfig) -> ExecResult {
        let deadline_s = cfg.overload.deadlines.get(QueryClass::of(&req.query));
        match &req.query {
            Query::Range { center, radius } => {
                let leaves = self.leaf_soup.count_intersecting(center, radius * radius);
                self.run_disk_query(req, cfg, leaves, deadline_s)
            }
            Query::Knn { center, k } => match scan_knn_radius(self.data, center, *k) {
                Ok(r) => {
                    let leaves = self.leaf_soup.count_intersecting(center, r * r);
                    self.run_disk_query(req, cfg, leaves, deadline_s)
                }
                Err(_) => ExecResult::failed(),
            },
            Query::Predict { center, radius } => {
                let r2 = radius * radius;
                if deadline_s.is_finite() {
                    self.run_priced_predict(req, cfg, center, r2, deadline_s)
                } else {
                    // The paper's sampled estimate is entirely in-memory:
                    // count against the grown upper leaves, charge no I/O.
                    ExecResult {
                        leaf_accesses: self.predict_soup.count_intersecting(center, r2),
                        io: IoStats::default(),
                        service_s: 0.0,
                        ok: true,
                        cut: false,
                        degraded: false,
                        coverage: 1.0,
                        hedged: false,
                        hedge_won: false,
                        disk_backed: false,
                    }
                }
            }
        }
    }

    /// Prices every offered request's queue delay with a no-shedding
    /// shadow pass of the slot algebra — the feed-forward pressure signal
    /// the admission lanes decide on.
    fn shadow_delays(
        &self,
        requests: &[Request],
        results: &[ExecResult],
        cfg: &ServeConfig,
    ) -> Vec<f64> {
        let mut free_at = vec![0.0f64; cfg.concurrency];
        let mut delays = vec![0.0f64; requests.len()];
        let mut base = 0usize;
        for batch in requests.chunks(cfg.batch) {
            let ready = batch.last().map_or(0.0, |r| r.arrival_s);
            let slot = (0..free_at.len())
                .min_by(|&a, &b| free_at[a].total_cmp(&free_at[b]))
                .unwrap_or(0);
            let mut t = free_at[slot].max(ready);
            for (j, req) in batch.iter().enumerate() {
                delays[base + j] = t - req.arrival_s;
                t += results[base + j].service_s;
            }
            free_at[slot] = t;
            base += batch.len();
        }
        delays
    }

    /// Serves an arrival-ordered request stream and accounts latency on
    /// simulated time (see the module docs for the queueing model and the
    /// overload-control layers).
    ///
    /// # Errors
    ///
    /// Propagates [`ServeConfig::validate`].
    pub fn run(&self, requests: &[Request], cfg: &ServeConfig, pool: &Pool) -> Result<ServeReport> {
        self.run_with_maintenance(requests, cfg, pool, None)
    }

    /// [`Server::run`] with an idle-slot [`Maintenance`] scheduler: idle
    /// gaps in the slot algebra run scrub slices, and the resulting
    /// [`HealthState`] gates admission — Degraded halves the backoff
    /// budget, ReadOnly refuses the disk-backed classes while predictions
    /// keep serving from memory.
    ///
    /// # Errors
    ///
    /// Propagates [`ServeConfig::validate`], lane/breaker construction,
    /// and maintenance I/O errors.
    pub fn run_with_maintenance(
        &self,
        requests: &[Request],
        cfg: &ServeConfig,
        pool: &Pool,
        mut maint: Option<&mut Maintenance>,
    ) -> Result<ServeReport> {
        cfg.validate()?;
        let mut admission =
            AdmissionControl::with_window(cfg.admission_budget_s, cfg.admission_window)?;
        let mut breaker = match cfg.overload.breaker {
            Some(bcfg) => Some(CircuitBreaker::new(bcfg)?),
            None => None,
        };

        // Lane admission runs before batching, on the shadow-priced offered
        // stream; the admitted sub-stream is then re-chunked into batches.
        // With lanes off, the admitted stream IS the offered stream and no
        // shadow pass runs (the zero-overload path stays byte-identical).
        let mut class_shed = [0u64; QueryClass::COUNT];
        let (admitted_idx, precomputed) = if let Some(policy) = cfg.overload.lanes {
            let results: Vec<ExecResult> = pool
                .par_map_isolated(requests, |r| self.execute(r, cfg))
                .into_iter()
                .map(|r| r.unwrap_or_else(|_| ExecResult::failed()))
                .collect();
            let delays = self.shadow_delays(requests, &results, cfg);
            let mut lanes = LaneState::new(policy)?;
            let mut idx = Vec::with_capacity(requests.len());
            for (i, req) in requests.iter().enumerate() {
                if lanes.admit(QueryClass::of(&req.query), delays[i]) {
                    idx.push(i);
                }
            }
            class_shed = lanes.shed_by_class();
            (idx, Some(results))
        } else {
            ((0..requests.len()).collect::<Vec<_>>(), None)
        };
        let lane_shed: u64 = class_shed.iter().sum();

        let mut recorder = LatencyRecorder::new();
        let mut class_rec: [LatencyRecorder; QueryClass::COUNT] = Default::default();
        let mut class_executed = [0u64; QueryClass::COUNT];
        let mut class_failed = [0u64; QueryClass::COUNT];
        let mut class_cut = [0u64; QueryClass::COUNT];
        let mut class_degraded = [0u64; QueryClass::COUNT];
        let mut free_at = vec![0.0f64; cfg.concurrency];
        let mut io = IoStats::default();
        let mut failed = 0u64;
        let mut deadline_cut = 0u64;
        let mut hedged = 0u64;
        let mut hedge_wins = 0u64;
        let mut degraded_count = 0u64;
        let mut coverage_sum = 0.0f64;
        let mut predict_executed = 0u64;
        let mut health_refused = 0u64;
        let mut makespan_s = 0.0f64;
        // The breaker clock: a monotone envelope of the slot times the
        // sequential accounting pass touches. Monotone because breaker
        // state must never move backwards in time even though slots do.
        let mut clock_s = 0.0f64;

        for batch in admitted_idx.chunks(cfg.batch) {
            // Health gates admission: a degraded store halves the backoff
            // budget for subsequent batches.
            if let Some(m) = maint.as_deref() {
                admission.set_budget_scale(match m.health() {
                    HealthState::Degraded => 0.5,
                    _ => 1.0,
                });
            }
            // The admission decision precedes execution and depends only
            // on the window state left by earlier batches — deterministic
            // because batches are accounted in arrival order.
            if !admission.admit_batch(batch.len()) {
                for &i in batch {
                    class_shed[QueryClass::of(&requests[i].query).index()] += 1;
                }
                continue;
            }
            let results: Vec<ExecResult> = match &precomputed {
                Some(all) => batch.iter().map(|&i| all[i]).collect(),
                // Without lanes the admitted indices are contiguous, so the
                // batch is a subslice of the offered stream.
                None => {
                    let reqs = &requests[batch[0]..batch[0] + batch.len()];
                    pool.par_map_isolated(reqs, |req| self.execute(req, cfg))
                        .into_iter()
                        .map(|r| r.unwrap_or_else(|_| ExecResult::failed()))
                        .collect()
                }
            };
            // Single-threaded time accounting: dispatch the batch to the
            // earliest-free slot (lowest index on ties) once its last
            // request has arrived.
            let ready = batch.last().map_or(0.0, |&i| requests[i].arrival_s);
            let slot = (0..free_at.len())
                .min_by(|&a, &b| free_at[a].total_cmp(&free_at[b]))
                .unwrap_or(0);
            let dispatch = free_at[slot].max(ready);
            // Idle gap on the slot: spend it on scrub slices. Maintenance
            // consumes the gap, never delays the dispatch.
            if let Some(m) = maint.as_deref_mut() {
                let idle = dispatch - free_at[slot];
                if idle > 0.0 {
                    m.run_idle(idle, &cfg.disk)?;
                }
            }
            let health = maint.as_deref().map(Maintenance::health);
            let mut t = dispatch;
            for (&i, res) in batch.iter().zip(results) {
                let req = &requests[i];
                let class = QueryClass::of(&req.query);
                let ci = class.index();
                // A read-only store refuses the disk-backed classes;
                // predictions keep serving from memory.
                if health == Some(HealthState::ReadOnly) && class != QueryClass::Predict {
                    health_refused += 1;
                    class_shed[ci] += 1;
                    continue;
                }
                // Breaker gate, clocked by the monotone time envelope.
                clock_s = clock_s.max(t);
                if let Some(b) = breaker.as_mut() {
                    if class != QueryClass::Predict && !b.allow(clock_s) {
                        // Fail fast: the precomputed result is discarded,
                        // nothing is charged, the refusal is immediate.
                        recorder.record(t - req.arrival_s);
                        class_rec[ci].record(t - req.arrival_s);
                        class_executed[ci] += 1;
                        failed += 1;
                        class_failed[ci] += 1;
                        admission.observe(0.0);
                        continue;
                    }
                }
                t += res.service_s;
                recorder.record(t - req.arrival_s);
                class_rec[ci].record(t - req.arrival_s);
                admission.observe(res.io.backoff as f64 * cfg.disk.t_seek_s);
                io += res.io;
                class_executed[ci] += 1;
                if !res.ok {
                    failed += 1;
                    class_failed[ci] += 1;
                }
                if res.cut {
                    deadline_cut += 1;
                    class_cut[ci] += 1;
                }
                if res.degraded {
                    degraded_count += 1;
                    class_degraded[ci] += 1;
                }
                if class == QueryClass::Predict {
                    predict_executed += 1;
                    coverage_sum += res.coverage;
                }
                if res.hedged {
                    hedged += 1;
                    if res.hedge_won {
                        hedge_wins += 1;
                    }
                }
                if let Some(b) = breaker.as_mut() {
                    if class != QueryClass::Predict {
                        clock_s = clock_s.max(t);
                        if res.ok {
                            b.on_success(clock_s);
                        } else {
                            b.on_failure(clock_s);
                        }
                    }
                }
            }
            free_at[slot] = t;
            makespan_s = makespan_s.max(t);
        }

        let by_class: [ClassStats; QueryClass::COUNT] = std::array::from_fn(|i| ClassStats {
            class: QueryClass::ALL[i],
            executed: class_executed[i],
            shed: class_shed[i],
            failed: class_failed[i],
            deadline_cut: class_cut[i],
            degraded: class_degraded[i],
            summary: class_rec[i].summary(),
            digest: class_rec[i].digest(),
        });
        Ok(ServeReport {
            total: requests.len() as u64,
            executed: admission.admitted() - health_refused,
            shed: admission.shed() + lane_shed + health_refused,
            failed,
            summary: recorder.summary(),
            digest: recorder.digest(),
            samples: recorder.samples().to_vec(),
            io,
            backoff_s: io.backoff as f64 * cfg.disk.t_seek_s,
            makespan_s,
            shed_fraction: {
                let total = requests.len() as u64;
                if total == 0 {
                    0.0
                } else {
                    (admission.shed() + lane_shed + health_refused) as f64 / total as f64
                }
            },
            by_class,
            deadline_cut,
            hedged,
            hedge_wins,
            degraded: DegradedReport {
                leaves_degraded: degraded_count as usize,
                coverage_fraction: if predict_executed == 0 {
                    1.0
                } else {
                    coverage_sum / predict_executed as f64
                },
            },
            breaker: breaker.map(|b| BreakerSummary {
                trips: b.trips(),
                fast_fails: b.fast_fails(),
                state: b.state(),
                digest: b.transitions_digest(),
            }),
            health: maint.as_deref().map(Maintenance::health),
            maintenance: maint.as_deref().map(Maintenance::report),
            isa: hdidx_core::simd::active().name(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loadgen::{ArrivalModel, LoadGen};
    use crate::maintain::{CleanSource, ScrubSource, SliceOutcome};
    use crate::overload::{Deadlines, LanePolicy};
    use crate::request::MixSpec;
    use hdidx_core::rng::{seeded, Rng};
    use hdidx_diskio::BreakerConfig;

    fn random_dataset(n: usize, dim: usize, seed: u64) -> Dataset {
        let mut rng = seeded(seed);
        Dataset::from_flat(dim, (0..n * dim).map(|_| rng.gen::<f32>()).collect()).unwrap()
    }

    fn fixture() -> (Dataset, Topology) {
        let data = random_dataset(2000, 4, 61);
        let topo = Topology::from_capacities(4, 2000, 10, 5).unwrap();
        (data, topo)
    }

    fn stream(data: &Dataset, seed: u64) -> Vec<Request> {
        let candidates: Vec<hdidx_model::QueryBall> = (0..16)
            .map(|i| hdidx_model::QueryBall::new(data.point(i * 100).to_vec(), 0.3))
            .collect();
        LoadGen {
            rate_per_s: 400.0,
            duration_s: 0.5,
            model: ArrivalModel::Bursty,
            seed,
        }
        .requests(&candidates, &MixSpec::default(), 5)
        .unwrap()
    }

    #[test]
    fn serves_a_stream_and_reports_latencies() {
        let (data, topo) = fixture();
        let server = Server::build(&data, &topo, 400, 7, None).unwrap();
        let reqs = stream(&data, 7);
        let report = server
            .run(&reqs, &ServeConfig::new(), &Pool::serial())
            .unwrap();
        assert_eq!(report.total, reqs.len() as u64);
        assert_eq!(report.executed, report.total);
        assert_eq!(report.shed, 0);
        assert_eq!(report.failed, 0);
        assert_eq!(report.samples.len(), reqs.len());
        let s = report.summary.unwrap();
        assert!(s.p50_s >= 0.0 && s.p50_s <= s.p95_s && s.p95_s <= s.p99_s);
        assert!(s.max_s <= report.makespan_s + 1e-12);
        // All latencies non-negative; disk-backed queries charge I/O.
        assert!(report.samples.iter().all(|&l| l >= 0.0));
        assert!(report.io.seeks > 0);
        assert_eq!(report.backoff_s, 0.0);
        // The zero-policy run reports the new observables as all-quiet.
        assert_eq!(report.deadline_cut, 0);
        assert_eq!(report.hedged, 0);
        assert_eq!(report.degraded, DegradedReport::default());
        assert_eq!(report.breaker, None);
        assert_eq!(report.health, None);
        assert_eq!(report.maintenance, None);
        // Per-class accounting partitions the run exactly.
        let exec: u64 = report.by_class.iter().map(|c| c.executed).sum();
        assert_eq!(exec, report.executed);
        for c in &report.by_class {
            assert!(c.executed > 0, "default mix exercises every class");
            assert_eq!(c.shed, 0);
            assert_eq!(c.summary.unwrap().count as u64, c.executed);
        }
    }

    #[test]
    fn more_slots_cannot_increase_latency() {
        let (data, topo) = fixture();
        let server = Server::build(&data, &topo, 400, 7, None).unwrap();
        let reqs = stream(&data, 8);
        let pool = Pool::serial();
        let narrow = server
            .run(
                &reqs,
                &ServeConfig {
                    concurrency: 1,
                    ..ServeConfig::new()
                },
                &pool,
            )
            .unwrap();
        let wide = server
            .run(
                &reqs,
                &ServeConfig {
                    concurrency: 8,
                    ..ServeConfig::new()
                },
                &pool,
            )
            .unwrap();
        let (n, w) = (narrow.summary.unwrap(), wide.summary.unwrap());
        assert!(w.p99_s <= n.p99_s + 1e-12, "wide {w:?} vs narrow {n:?}");
        assert!(w.mean_s <= n.mean_s + 1e-12);
        // Same work, same I/O — only queueing changes.
        assert_eq!(narrow.io, wide.io);
    }

    #[test]
    fn faulted_serving_shelters_determinism_and_sheds() {
        let (data, topo) = fixture();
        let fcfg = FaultConfig::disabled(3)
            .with_rate_ppm(300_000)
            .with_retry(hdidx_faults::RetryPolicy::Exponential)
            .with_phase_scale(FaultPhase::Build, 0);
        let server = Server::build(&data, &topo, 400, 7, Some(fcfg)).unwrap();
        let reqs = stream(&data, 9);
        let cfg = ServeConfig {
            admission_budget_s: 0.05,
            ..ServeConfig::new()
        };
        let pool = Pool::serial();
        let a = server.run(&reqs, &cfg, &pool).unwrap();
        let b = server.run(&reqs, &cfg, &pool).unwrap();
        assert_eq!(a, b, "faulted serving must be reproducible");
        assert!(a.io.retries > 0, "fault rate must trigger retries");
        assert!(a.backoff_s > 0.0);
        assert!(a.shed > 0, "budget 50 ms must shed under this fault rate");
        assert!(a.shed_fraction > 0.0);
        assert_eq!(a.executed + a.shed, a.total);
        // Shed requests record no latency.
        assert_eq!(a.samples.len() as u64, a.executed);
        // Per-class sheds sum to the total.
        let shed: u64 = a.by_class.iter().map(|c| c.shed).sum();
        assert_eq!(shed, a.shed);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let (data, topo) = fixture();
        let server = Server::build(&data, &topo, 400, 7, None).unwrap();
        let reqs = stream(&data, 7);
        let pool = Pool::serial();
        let bad = |cfg: ServeConfig| server.run(&reqs, &cfg, &pool).is_err();
        assert!(bad(ServeConfig {
            concurrency: 0,
            ..ServeConfig::new()
        }));
        assert!(bad(ServeConfig {
            batch: 0,
            ..ServeConfig::new()
        }));
        assert!(bad(ServeConfig {
            admission_budget_s: 0.0,
            ..ServeConfig::new()
        }));
        assert!(bad(ServeConfig {
            admission_budget_s: f64::NAN,
            ..ServeConfig::new()
        }));
        assert!(bad(ServeConfig {
            admission_window: 0,
            ..ServeConfig::new()
        }));
        let mut overload = OverloadPolicy::none();
        overload.hedge_s = -1.0;
        assert!(bad(ServeConfig {
            overload,
            ..ServeConfig::new()
        }));
    }

    #[test]
    fn deadlines_cut_disk_queries_and_degrade_predicts() {
        let (data, topo) = fixture();
        let server = Server::build(&data, &topo, 400, 7, None).unwrap();
        let reqs = stream(&data, 7);
        let pool = Pool::serial();
        let base = server.run(&reqs, &ServeConfig::new(), &pool).unwrap();
        // A deadline of ~3 page costs cuts everything that reads more.
        let per_page = DiskModel::PAPER.t_seek_s + DiskModel::PAPER.t_xfer_s();
        let mut overload = OverloadPolicy::none();
        overload.deadlines = Deadlines::all(3.0 * per_page + 1e-9);
        let cfg = ServeConfig {
            overload,
            ..ServeConfig::new()
        };
        let tight = server.run(&reqs, &cfg, &pool).unwrap();
        assert!(tight.deadline_cut > 0, "tight deadline must cut queries");
        assert_eq!(tight.failed, 0, "cuts are not failures");
        assert!(
            tight.io.transfers < base.io.transfers,
            "cut queries charge less I/O"
        );
        assert!(
            tight.makespan_s < base.makespan_s,
            "bounded service bounds the makespan"
        );
        // Every predict ran priced: it charged I/O and possibly degraded.
        let p = &tight.by_class[QueryClass::Predict.index()];
        assert!(p.executed > 0);
        assert_eq!(
            tight.degraded.leaves_degraded as u64, p.degraded,
            "degradation is a predict-class phenomenon"
        );
        if p.degraded > 0 {
            assert!(tight.degraded.coverage_fraction < 1.0);
        }
        // Identical replay.
        assert_eq!(tight, server.run(&reqs, &cfg, &pool).unwrap());
    }

    #[test]
    fn closed_lane_equals_never_offering_that_class() {
        let (data, topo) = fixture();
        let server = Server::build(&data, &topo, 400, 7, None).unwrap();
        let reqs = stream(&data, 7);
        let pool = Pool::serial();
        // Close knn+predict lanes; range is protected.
        let mut overload = OverloadPolicy::none();
        overload.lanes = Some(LanePolicy::parse("knn:0,predict:0").unwrap());
        let cfg = ServeConfig {
            overload,
            ..ServeConfig::new()
        };
        let gated = server.run(&reqs, &cfg, &pool).unwrap();
        // The same stream with the shed classes physically removed.
        let only_range: Vec<Request> = reqs
            .iter()
            .filter(|r| QueryClass::of(&r.query) == QueryClass::Range)
            .cloned()
            .collect();
        let alone = server.run(&only_range, &ServeConfig::new(), &pool).unwrap();
        let r = QueryClass::Range.index();
        assert_eq!(
            gated.by_class[r].digest, alone.by_class[r].digest,
            "protected class must not see the shed load at all"
        );
        assert_eq!(gated.by_class[r].executed, alone.by_class[r].executed);
        assert_eq!(gated.executed, alone.executed);
        assert_eq!(
            gated.shed,
            reqs.len() as u64 - only_range.len() as u64,
            "everything non-range sheds"
        );
    }

    #[test]
    fn breaker_fast_fails_under_fault_storm_and_reports() {
        let (data, topo) = fixture();
        let fcfg = FaultConfig::disabled(3)
            .with_rate_ppm(900_000)
            .with_retry(hdidx_faults::RetryPolicy::Exponential)
            .with_phase_scale(FaultPhase::Build, 0);
        let server = Server::build(&data, &topo, 400, 7, Some(fcfg)).unwrap();
        let reqs = stream(&data, 9);
        let pool = Pool::serial();
        let mut overload = OverloadPolicy::none();
        overload.breaker = Some(BreakerConfig {
            failure_threshold: 2,
            window_s: 10.0,
            open_s: 0.2,
            probes: 1,
        });
        let cfg = ServeConfig {
            overload,
            ..ServeConfig::new()
        };
        let a = server.run(&reqs, &cfg, &pool).unwrap();
        let b = server.run(&reqs, &cfg, &pool).unwrap();
        assert_eq!(a, b, "breaker trajectory must replay");
        let brk = a.breaker.expect("breaker summary present");
        assert!(brk.trips >= 1, "the storm must trip the breaker: {brk:?}");
        assert!(brk.fast_fails >= 1);
        // Fast-failed requests count as failed; the run charges less I/O
        // than the breaker-less run burning full retry ladders everywhere.
        let off = server
            .run(
                &reqs,
                &ServeConfig {
                    overload: OverloadPolicy::none(),
                    ..cfg
                },
                &pool,
            )
            .unwrap();
        assert!(
            a.backoff_s < off.backoff_s,
            "{} vs {}",
            a.backoff_s,
            off.backoff_s
        );
        // Predictions never route through the breaker.
        let p = QueryClass::Predict.index();
        assert_eq!(a.by_class[p].failed, 0);
    }

    #[test]
    fn hedged_replays_bound_stragglers_and_charge_both_attempts() {
        let (data, topo) = fixture();
        let fcfg = FaultConfig::disabled(3)
            .with_rate_ppm(400_000)
            .with_retry(hdidx_faults::RetryPolicy::Exponential)
            .with_phase_scale(FaultPhase::Build, 0);
        let server = Server::build(&data, &topo, 400, 7, Some(fcfg)).unwrap();
        let reqs = stream(&data, 9);
        let pool = Pool::serial();
        let base = server.run(&reqs, &ServeConfig::new(), &pool).unwrap();
        let mut overload = OverloadPolicy::none();
        overload.hedge_s = 0.05;
        let cfg = ServeConfig {
            overload,
            ..ServeConfig::new()
        };
        let hedged = server.run(&reqs, &cfg, &pool).unwrap();
        assert!(hedged.hedged > 0, "the storm must trigger hedges");
        assert!(hedged.hedge_wins <= hedged.hedged);
        assert!(
            hedged.io.transfers > base.io.transfers,
            "hedges charge both attempts"
        );
        assert!(
            hedged.failed <= base.failed,
            "a hedge can only rescue failures"
        );
        assert_eq!(hedged, server.run(&reqs, &cfg, &pool).unwrap());
    }

    #[test]
    fn maintenance_scrubs_idle_gaps_and_read_only_refuses_disk_classes() {
        let (data, topo) = fixture();
        let server = Server::build(&data, &topo, 400, 7, None).unwrap();
        let reqs = stream(&data, 7);
        let pool = Pool::serial();
        // A clean source: health stays healthy, slices accumulate.
        let mut maint = Maintenance::new(Box::new(CleanSource { pages: 64 }), 4).unwrap();
        let cfg = ServeConfig::new();
        let report = server
            .run_with_maintenance(&reqs, &cfg, &pool, Some(&mut maint))
            .unwrap();
        assert_eq!(report.health, Some(HealthState::Healthy));
        let m = report.maintenance.unwrap();
        assert!(m.slices > 0, "arrival gaps must leave idle time: {m:?}");
        // The maintained run serves the exact same latency stream: scrub
        // slices consume idle time without delaying any dispatch.
        let plain = server.run(&reqs, &cfg, &pool).unwrap();
        assert_eq!(report.digest, plain.digest);

        // A source that quarantines on its first slice forces read-only:
        // every disk-backed request after that point is refused.
        struct Lossy;
        impl ScrubSource for Lossy {
            fn pages(&mut self) -> Result<u64> {
                Ok(16)
            }
            fn scrub_slice(&mut self, first: u64, _n: u64) -> Result<SliceOutcome> {
                Ok(if first == 0 {
                    SliceOutcome {
                        corrupt: 1,
                        repaired: 0,
                        quarantined: 1,
                    }
                } else {
                    SliceOutcome::default()
                })
            }
        }
        let mut maint = Maintenance::new(Box::new(Lossy), 4).unwrap();
        let ro = server
            .run_with_maintenance(&reqs, &cfg, &pool, Some(&mut maint))
            .unwrap();
        assert_eq!(ro.health, Some(HealthState::ReadOnly));
        assert!(ro.shed > 0, "read-only must refuse disk-backed requests");
        assert_eq!(ro.executed + ro.shed, ro.total);
        let p = QueryClass::Predict.index();
        assert_eq!(
            ro.by_class[p].shed, 0,
            "predictions keep serving from memory"
        );
        assert!(ro.by_class[QueryClass::Range.index()].shed > 0);
    }
}
