//! Typed serving requests and the read-mix specification.

use hdidx_core::{Error, Result};

/// One typed query a [`crate::Server`] can execute.
#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    /// Ball (range) query: read every leaf page whose MINDIST to `center`
    /// is at most `radius`.
    Range {
        /// Query center.
        center: Vec<f32>,
        /// Query-sphere radius.
        radius: f64,
    },
    /// Exact k-NN: resolve the k-NN radius against the dataset, then read
    /// the leaf pages of the resulting sphere — the access set the
    /// best-first search visits.
    Knn {
        /// Query center.
        center: Vec<f32>,
        /// Neighbor count.
        k: usize,
    },
    /// Cost prediction: count the grown upper-tree leaves the sphere
    /// intersects, entirely in memory (the paper's sampled estimate); no
    /// disk I/O is charged.
    Predict {
        /// Query center.
        center: Vec<f32>,
        /// Query-sphere radius.
        radius: f64,
    },
}

impl Query {
    /// Stable class name (`"range"`, `"knn"`, `"predict"`).
    #[must_use]
    pub fn class(&self) -> &'static str {
        QueryClass::of(self).as_str()
    }
}

/// The three query classes as a dense index — the unit overload policy
/// (deadlines, admission lanes, per-class latency accounting) is keyed by.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryClass {
    /// Ball (range) queries.
    Range,
    /// Exact k-NN queries.
    Knn,
    /// Cost predictions.
    Predict,
}

impl QueryClass {
    /// Number of classes (array-index bound).
    pub const COUNT: usize = 3;

    /// All classes, in index order.
    pub const ALL: [QueryClass; QueryClass::COUNT] =
        [QueryClass::Range, QueryClass::Knn, QueryClass::Predict];

    /// The class of a query.
    #[must_use]
    pub fn of(query: &Query) -> QueryClass {
        match query {
            Query::Range { .. } => QueryClass::Range,
            Query::Knn { .. } => QueryClass::Knn,
            Query::Predict { .. } => QueryClass::Predict,
        }
    }

    /// Dense index (`range` 0, `knn` 1, `predict` 2).
    #[must_use]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable class name (`"range"`, `"knn"`, `"predict"`).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            QueryClass::Range => "range",
            QueryClass::Knn => "knn",
            QueryClass::Predict => "predict",
        }
    }

    /// Parses a class name.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidParameter`] for anything but the three class names.
    pub fn parse(name: &str) -> Result<QueryClass> {
        match name {
            "range" => Ok(QueryClass::Range),
            "knn" => Ok(QueryClass::Knn),
            "predict" => Ok(QueryClass::Predict),
            other => Err(Error::invalid(
                "class",
                format!("unknown class `{other}` (expected range, knn, predict)"),
            )),
        }
    }
}

impl std::fmt::Display for QueryClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A request in the open-loop arrival stream.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Sequence number in arrival order. Also the fault-plan stream of the
    /// request: its injected faults are a pure function of `(fault seed,
    /// id)`, never of scheduling.
    pub id: u64,
    /// Simulated arrival time, in seconds from the start of the run.
    pub arrival_s: f64,
    /// The typed query to execute.
    pub query: Query,
}

/// Workload mix: the fraction of requests drawn as range / k-NN / predict.
///
/// Fractions must be finite, non-negative, and sum to 1 (within 1e-6).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MixSpec {
    /// Fraction of [`Query::Range`] requests.
    pub range: f64,
    /// Fraction of [`Query::Knn`] requests.
    pub knn: f64,
    /// Fraction of [`Query::Predict`] requests.
    pub predict: f64,
}

impl Default for MixSpec {
    /// The default serving mix: half range reads, 30 % k-NN, 20 % cost
    /// predictions.
    fn default() -> Self {
        MixSpec {
            range: 0.5,
            knn: 0.3,
            predict: 0.2,
        }
    }
}

impl MixSpec {
    /// Parses a `class:fraction[,class:fraction...]` spec, e.g.
    /// `range:0.5,knn:0.3,predict:0.2`. Unnamed classes default to 0; the
    /// named fractions must sum to 1.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidParameter`] with a field-oriented message (matching
    /// the CSV reader's line-oriented style) for an unknown class, an
    /// unparsable or out-of-range fraction, a duplicated class, or
    /// fractions that do not sum to 1.
    pub fn parse(spec: &str) -> Result<MixSpec> {
        let mut mix = MixSpec {
            range: 0.0,
            knn: 0.0,
            predict: 0.0,
        };
        let mut seen = [false; 3];
        for (i, part) in spec.split(',').enumerate() {
            let field = i + 1;
            let (name, frac) = part.split_once(':').ok_or_else(|| {
                Error::invalid(
                    "mix",
                    format!("field {field}: expected class:fraction, got `{part}`"),
                )
            })?;
            let idx = match name {
                "range" => 0,
                "knn" => 1,
                "predict" => 2,
                other => {
                    return Err(Error::invalid(
                        "mix",
                        format!(
                            "field {field}: unknown class `{other}` \
                             (expected range, knn, predict)"
                        ),
                    ))
                }
            };
            if seen[idx] {
                return Err(Error::invalid(
                    "mix",
                    format!("field {field}: class `{name}` given twice"),
                ));
            }
            seen[idx] = true;
            let value: f64 = frac.parse().map_err(|_| {
                Error::invalid(
                    "mix",
                    format!("field {field}: cannot parse fraction `{frac}`"),
                )
            })?;
            if !value.is_finite() || !(0.0..=1.0).contains(&value) {
                return Err(Error::invalid(
                    "mix",
                    format!("field {field}: fraction `{frac}` must lie in [0, 1]"),
                ));
            }
            match idx {
                0 => mix.range = value,
                1 => mix.knn = value,
                _ => mix.predict = value,
            }
        }
        mix.validate()?;
        Ok(mix)
    }

    /// Checks the mix: finite fractions in `[0, 1]` summing to 1.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidParameter`] describing the violated constraint.
    pub fn validate(&self) -> Result<()> {
        for (name, f) in [
            ("range", self.range),
            ("knn", self.knn),
            ("predict", self.predict),
        ] {
            if !f.is_finite() || !(0.0..=1.0).contains(&f) {
                return Err(Error::invalid(
                    "mix",
                    format!("fraction for `{name}` must lie in [0, 1], got {f}"),
                ));
            }
        }
        let sum = self.range + self.knn + self.predict;
        if (sum - 1.0).abs() > 1e-6 {
            return Err(Error::invalid(
                "mix",
                format!("fractions must sum to 1.0, got {sum}"),
            ));
        }
        Ok(())
    }

    /// Maps a uniform draw `u ∈ [0, 1)` to a query class by cumulative
    /// fraction: `[0, range)` → range, `[range, range+knn)` → k-NN, the
    /// rest → predict.
    #[must_use]
    pub fn pick(&self, u: f64) -> &'static str {
        if u < self.range {
            "range"
        } else if u < self.range + self.knn {
            "knn"
        } else {
            "predict"
        }
    }
}

impl std::fmt::Display for MixSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "range:{},knn:{},predict:{}",
            self.range, self.knn, self.predict
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_and_partial_specs() {
        let mix = MixSpec::parse("range:0.5,knn:0.3,predict:0.2").unwrap();
        assert_eq!(
            mix,
            MixSpec {
                range: 0.5,
                knn: 0.3,
                predict: 0.2
            }
        );
        // Unnamed classes default to zero.
        let mix = MixSpec::parse("range:1.0").unwrap();
        assert_eq!(mix.range, 1.0);
        assert_eq!(mix.knn, 0.0);
        assert_eq!(mix.predict, 0.0);
        let mix = MixSpec::parse("knn:0.25,range:0.75").unwrap();
        assert_eq!(mix.knn, 0.25);
        // Round-trips through Display.
        assert_eq!(MixSpec::parse(&mix.to_string()).unwrap(), mix);
    }

    #[test]
    fn rejects_malformed_specs_with_field_numbers() {
        let e = MixSpec::parse("range:0.5,knn").unwrap_err().to_string();
        assert!(e.contains("field 2"), "{e}");
        assert!(e.contains("class:fraction"), "{e}");
        let e = MixSpec::parse("scan:1.0").unwrap_err().to_string();
        assert!(e.contains("unknown class `scan`"), "{e}");
        let e = MixSpec::parse("range:0.5,range:0.5")
            .unwrap_err()
            .to_string();
        assert!(e.contains("field 2") && e.contains("twice"), "{e}");
        let e = MixSpec::parse("range:lots").unwrap_err().to_string();
        assert!(e.contains("cannot parse fraction"), "{e}");
        let e = MixSpec::parse("range:-0.5,knn:1.5")
            .unwrap_err()
            .to_string();
        assert!(e.contains("must lie in [0, 1]"), "{e}");
        let e = MixSpec::parse("range:0.5,knn:0.3").unwrap_err().to_string();
        assert!(e.contains("sum to 1.0"), "{e}");
        let e = MixSpec::parse("range:nan").unwrap_err().to_string();
        assert!(e.contains("must lie in [0, 1]"), "{e}");
    }

    #[test]
    fn pick_follows_cumulative_fractions() {
        let mix = MixSpec::default();
        assert_eq!(mix.pick(0.0), "range");
        assert_eq!(mix.pick(0.49), "range");
        assert_eq!(mix.pick(0.5), "knn");
        assert_eq!(mix.pick(0.79), "knn");
        assert_eq!(mix.pick(0.8), "predict");
        assert_eq!(mix.pick(0.999), "predict");
        let all_knn = MixSpec {
            range: 0.0,
            knn: 1.0,
            predict: 0.0,
        };
        assert_eq!(all_knn.pick(0.0), "knn");
    }

    #[test]
    fn query_class_round_trips_names_and_indexes_densely() {
        for (i, c) in QueryClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
            assert_eq!(QueryClass::parse(c.as_str()).unwrap(), *c);
            assert_eq!(c.to_string(), c.as_str());
        }
        let e = QueryClass::parse("scan").unwrap_err().to_string();
        assert!(e.contains("unknown class `scan`"), "{e}");
    }

    #[test]
    fn query_class_names_are_stable() {
        let c = vec![0.0f32];
        assert_eq!(
            Query::Range {
                center: c.clone(),
                radius: 1.0
            }
            .class(),
            "range"
        );
        assert_eq!(
            Query::Knn {
                center: c.clone(),
                k: 3
            }
            .class(),
            "knn"
        );
        assert_eq!(
            Query::Predict {
                center: c,
                radius: 1.0
            }
            .class(),
            "predict"
        );
    }
}
