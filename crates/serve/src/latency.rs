//! Exact tail-latency accounting.
//!
//! The recorder keeps **every** per-query latency sample (simulated
//! seconds) in completion order and reports exact nearest-rank percentiles
//! via [`hdidx_check::stats`] — no reservoirs, no histograms, no
//! approximation. At serving-experiment scale (≤ 2M requests) exact
//! samples are cheap, and they buy two properties the subsystem's
//! determinism contract needs: the digest of the sample stream is
//! byte-comparable across thread counts, and every reported percentile is
//! a latency some request actually experienced.

use hdidx_check::stats;

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Exact-sample latency recorder for one serving run (or sweep cell).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LatencyRecorder {
    samples: Vec<f64>,
}

/// Percentile summary of a recorder's samples, all values exact observed
/// latencies in simulated seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    /// Number of recorded samples.
    pub count: usize,
    /// Nearest-rank median.
    pub p50_s: f64,
    /// Nearest-rank 95th percentile.
    pub p95_s: f64,
    /// Nearest-rank 99th percentile.
    pub p99_s: f64,
    /// Largest sample.
    pub max_s: f64,
    /// Arithmetic mean.
    pub mean_s: f64,
}

impl LatencyRecorder {
    /// Empty recorder.
    #[must_use]
    pub fn new() -> Self {
        LatencyRecorder::default()
    }

    /// Appends one latency sample (seconds), in completion order.
    pub fn record(&mut self, latency_s: f64) {
        self.samples.push(latency_s);
    }

    /// The raw samples, in record order.
    #[must_use]
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// FNV-1a hash over the little-endian bit patterns of the samples in
    /// record order. Two runs are byte-identical iff digests match, which
    /// makes the determinism contract observable from CLI output alone.
    #[must_use]
    pub fn digest(&self) -> u64 {
        let mut h = FNV_OFFSET;
        for s in &self.samples {
            for b in s.to_bits().to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(FNV_PRIME);
            }
        }
        h
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples were recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Arithmetic mean of the samples, or `None` when empty.
    #[must_use]
    pub fn mean_s(&self) -> Option<f64> {
        if self.samples.is_empty() {
            None
        } else {
            Some(self.samples.iter().sum::<f64>() / self.samples.len() as f64)
        }
    }

    /// Largest sample (by IEEE total order), or `None` when empty.
    #[must_use]
    pub fn max_s(&self) -> Option<f64> {
        self.samples.iter().copied().max_by(f64::total_cmp)
    }

    /// Exact nearest-rank percentile summary, or `None` when the recorder
    /// is empty or a sample is NaN (a NaN latency is an accounting bug and
    /// must not silently vanish inside a percentile).
    #[must_use]
    pub fn summary(&self) -> Option<LatencySummary> {
        let mut sorted = self.samples.clone();
        sorted.sort_by(f64::total_cmp);
        Some(LatencySummary {
            count: sorted.len(),
            p50_s: stats::p50(&sorted)?,
            p95_s: stats::p95(&sorted)?,
            p99_s: stats::p99(&sorted)?,
            max_s: *sorted.last()?,
            mean_s: sorted.iter().sum::<f64>() / sorted.len() as f64,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_reports_exact_observed_percentiles() {
        let mut rec = LatencyRecorder::new();
        // Record out of order; summary sorts internally.
        for v in (1..=100).rev() {
            rec.record(f64::from(v) * 1e-3);
        }
        let s = rec.summary().unwrap();
        assert_eq!(s.count, 100);
        assert!((s.p50_s - 0.050).abs() < 1e-12);
        assert!((s.p95_s - 0.095).abs() < 1e-12);
        assert!((s.p99_s - 0.099).abs() < 1e-12);
        assert!((s.max_s - 0.100).abs() < 1e-12);
        assert!((s.mean_s - 0.0505).abs() < 1e-12);
    }

    #[test]
    fn empty_and_nan_yield_none() {
        assert_eq!(LatencyRecorder::new().summary(), None);
        let mut rec = LatencyRecorder::new();
        rec.record(1.0);
        rec.record(f64::NAN);
        assert_eq!(rec.summary(), None);
    }

    #[test]
    fn mean_and_max_accessors_match_the_summary() {
        let mut rec = LatencyRecorder::new();
        assert_eq!(rec.mean_s(), None);
        assert_eq!(rec.max_s(), None);
        assert!(rec.is_empty());
        for v in [0.3, 0.1, 0.2] {
            rec.record(v);
        }
        assert_eq!(rec.len(), 3);
        let s = rec.summary().unwrap();
        assert_eq!(rec.mean_s(), Some(s.mean_s));
        assert_eq!(rec.max_s(), Some(s.max_s));
        assert!((rec.max_s().unwrap() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn digest_depends_on_order_and_bits() {
        let mut a = LatencyRecorder::new();
        a.record(0.25);
        a.record(0.5);
        let mut b = LatencyRecorder::new();
        b.record(0.5);
        b.record(0.25);
        assert_ne!(a.digest(), b.digest(), "order must matter");
        let mut c = LatencyRecorder::new();
        c.record(0.25);
        c.record(0.5);
        assert_eq!(a.digest(), c.digest());
        assert_ne!(a.digest(), LatencyRecorder::new().digest());
        // -0.0 and +0.0 differ bitwise, so they must differ in the digest.
        let mut pz = LatencyRecorder::new();
        pz.record(0.0);
        let mut nz = LatencyRecorder::new();
        nz.record(-0.0);
        assert_ne!(pz.digest(), nz.digest());
    }
}
